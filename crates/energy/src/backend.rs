//! The pluggable energy-accounting seam: [`EnergyBackend`] and its
//! serializable selector [`EnergyBackendConfig`].
//!
//! Everything downstream of the power model — the online RM's Eq. 4–5, the
//! simulator's ground-truth bookkeeping, the campaign reports — consumes
//! power and energy exclusively through this trait, so the McPAT-style
//! parameterization the paper calibrated (§IV-A) becomes *one* backend among
//! several rather than a hard-coded constant. Alternative backends let every
//! existing experiment re-run as an energy-model sensitivity study: the
//! measured-power [`crate::TableBackend`] drives the accounting from
//! per-(core size, V/f) lookup tables, and the technology
//! [`crate::ScaledBackend`] re-derives results at other process nodes.
//!
//! ## Trait contract
//!
//! Implementations must be pure functions of their construction inputs
//! (campaign determinism relies on it) and must satisfy, over the whole
//! `(c, vf, util)` grid:
//!
//! * every power and energy query returns a finite, nonnegative value;
//! * `core_power` is nondecreasing in the operating point at fixed
//!   utilization (raising V/f never reduces power draw);
//! * `dyn_ratio(t, c)` equals the ratio of full-utilization dynamic power
//!   between sizes at the reference point (the RM's Eq. 4 extrapolation
//!   factor), so `dyn_ratio(a, b) · dyn_ratio(b, a) = 1`.
//!
//! These invariants are enforced for every in-tree backend by the
//! `backend_properties` test suite.

use crate::scaled::{ScaledBackend, TechNode};
use crate::table::TableBackend;
use crate::EnergyModel;
use triad_arch::{CoreSize, VfPoint};
use triad_util::json::Json;

/// A power/energy accounting model: the one seam through which the RM, the
/// simulator and the reports observe watts and joules.
pub trait EnergyBackend: std::fmt::Debug + Send + Sync {
    /// Self-describing identity recorded in campaign rows and JSON reports,
    /// e.g. `"mcpat"`, `"table:power.json"`, `"scaled:14nm"`.
    fn label(&self) -> String;

    /// Dynamic core power at operating point `vf` with utilization
    /// `util ∈ [0, 1]` (retired IPC over dispatch width), watts.
    fn core_dynamic_power(&self, c: CoreSize, vf: VfPoint, util: f64) -> f64;

    /// Static (leakage) core power at operating point `vf`, watts.
    fn core_static_power(&self, c: CoreSize, vf: VfPoint) -> f64;

    /// Energy per DRAM line transfer (read or writeback), joules.
    fn dram_energy_per_access_j(&self) -> f64;

    /// Uncore (LLC slice + NoC) power per core on the global domain, watts.
    fn uncore_w_per_core(&self) -> f64;

    /// Full-utilization dynamic-power ratio between core sizes at the
    /// reference operating point — the offline capacitance ratio the online
    /// model uses to extrapolate a sampled power to other sizes (Eq. 4).
    fn dyn_ratio(&self, target: CoreSize, current: CoreSize) -> f64;

    /// Total core power: dynamic plus static.
    fn core_power(&self, c: CoreSize, vf: VfPoint, util: f64) -> f64 {
        self.core_dynamic_power(c, vf, util) + self.core_static_power(c, vf)
    }

    /// Core energy over a duration.
    fn core_energy(&self, c: CoreSize, vf: VfPoint, util: f64, time_s: f64) -> f64 {
        self.core_power(c, vf, util) * time_s
    }

    /// DRAM energy for `accesses` line transfers (reads + writebacks).
    fn dram_energy(&self, accesses: u64) -> f64 {
        accesses as f64 * self.dram_energy_per_access_j()
    }

    /// Uncore energy for an `n_cores` system over a duration.
    fn uncore_energy(&self, n_cores: usize, time_s: f64) -> f64 {
        self.uncore_w_per_core() * n_cores as f64 * time_s
    }
}

/// A pure, serializable description of which backend to construct — the
/// form carried by experiment specs and recorded in campaign metadata so
/// archived rows stay attributable to the power model that produced them.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub enum EnergyBackendConfig {
    /// The default McPAT-parametric [`EnergyModel`] (bit-compatible with
    /// the pre-trait accounting).
    #[default]
    Parametric,
    /// A measured-power [`TableBackend`] loaded from the canonical JSON
    /// file at `path`.
    Table {
        /// Path of the table file (relative paths resolve against the
        /// process working directory).
        path: String,
    },
    /// A technology [`ScaledBackend`] over the parametric base.
    Scaled {
        /// Process-node name (see [`TechNode::ALL`]), e.g. `"14nm"`.
        node: String,
    },
}

impl EnergyBackendConfig {
    /// The spelling accepted by [`EnergyBackendConfig::parse`] and written
    /// into reports: `mcpat`, `table:<path>` or `scaled:<node>`.
    pub fn label(&self) -> String {
        match self {
            EnergyBackendConfig::Parametric => "mcpat".into(),
            EnergyBackendConfig::Table { path } => format!("table:{path}"),
            EnergyBackendConfig::Scaled { node } => format!("scaled:{node}"),
        }
    }

    /// Parse a CLI spelling (`mcpat` / `parametric` / `default`,
    /// `table:<path>`, `scaled:<node>`). Validation beyond the shape — the
    /// table file existing, the node being known — happens in
    /// [`EnergyBackendConfig::build`].
    pub fn parse(s: &str) -> Option<EnergyBackendConfig> {
        if let Some(path) = s.strip_prefix("table:") {
            if path.is_empty() {
                return None;
            }
            return Some(EnergyBackendConfig::Table { path: path.to_string() });
        }
        if let Some(node) = s.strip_prefix("scaled:") {
            if node.is_empty() {
                return None;
            }
            return Some(EnergyBackendConfig::Scaled { node: node.to_string() });
        }
        match s.to_ascii_lowercase().as_str() {
            "mcpat" | "parametric" | "default" => Some(EnergyBackendConfig::Parametric),
            _ => None,
        }
    }

    /// Construct the described backend. Fails when a table file is missing
    /// or malformed, or a technology node is unknown.
    pub fn build(&self) -> Result<Box<dyn EnergyBackend>, String> {
        match self {
            EnergyBackendConfig::Parametric => Ok(Box::new(EnergyModel::default_model())),
            EnergyBackendConfig::Table { path } => {
                TableBackend::load(path).map(|t| Box::new(t) as Box<dyn EnergyBackend>)
            }
            EnergyBackendConfig::Scaled { node } => {
                let node = TechNode::by_name(node).ok_or_else(|| {
                    let known: Vec<&str> = TechNode::ALL.iter().map(|n| n.name).collect();
                    format!("unknown technology node {node:?}; known nodes: {}", known.join(", "))
                })?;
                Ok(Box::new(ScaledBackend::new(EnergyModel::default_model(), node)))
            }
        }
    }

    /// Canonical JSON form.
    pub fn to_json(&self) -> Json {
        match self {
            EnergyBackendConfig::Parametric => Json::obj().set("kind", "parametric"),
            EnergyBackendConfig::Table { path } => {
                Json::obj().set("kind", "table").set("path", path.clone())
            }
            EnergyBackendConfig::Scaled { node } => {
                Json::obj().set("kind", "scaled").set("node", node.clone())
            }
        }
    }

    /// Inverse of [`EnergyBackendConfig::to_json`].
    pub fn from_json(j: &Json) -> Result<EnergyBackendConfig, String> {
        let kind = match j.get("kind") {
            Some(Json::Str(s)) => s.as_str(),
            _ => return Err("energy backend config: missing string field \"kind\"".into()),
        };
        let str_field = |key: &str| -> Result<String, String> {
            match j.get(key) {
                Some(Json::Str(s)) => Ok(s.clone()),
                _ => Err(format!("energy backend config: missing string field {key:?}")),
            }
        };
        match kind {
            "parametric" => Ok(EnergyBackendConfig::Parametric),
            "table" => Ok(EnergyBackendConfig::Table { path: str_field("path")? }),
            "scaled" => Ok(EnergyBackendConfig::Scaled { node: str_field("node")? }),
            other => Err(format!("energy backend config: unknown kind {other:?}")),
        }
    }
}

impl std::fmt::Display for EnergyBackendConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_every_spelling_and_rejects_garbage() {
        assert_eq!(EnergyBackendConfig::parse("mcpat"), Some(EnergyBackendConfig::Parametric));
        assert_eq!(EnergyBackendConfig::parse("Parametric"), Some(EnergyBackendConfig::Parametric));
        assert_eq!(EnergyBackendConfig::parse("default"), Some(EnergyBackendConfig::Parametric));
        assert_eq!(
            EnergyBackendConfig::parse("table:power.json"),
            Some(EnergyBackendConfig::Table { path: "power.json".into() })
        );
        assert_eq!(
            EnergyBackendConfig::parse("scaled:14nm"),
            Some(EnergyBackendConfig::Scaled { node: "14nm".into() })
        );
        assert_eq!(EnergyBackendConfig::parse("table:"), None);
        assert_eq!(EnergyBackendConfig::parse("scaled:"), None);
        assert_eq!(EnergyBackendConfig::parse("bogus"), None);
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for cfg in [
            EnergyBackendConfig::Parametric,
            EnergyBackendConfig::Table { path: "x/y.json".into() },
            EnergyBackendConfig::Scaled { node: "7nm".into() },
        ] {
            assert_eq!(EnergyBackendConfig::parse(&cfg.label()), Some(cfg.clone()));
        }
    }

    #[test]
    fn json_round_trips() {
        for cfg in [
            EnergyBackendConfig::Parametric,
            EnergyBackendConfig::Table { path: "tables/p.json".into() },
            EnergyBackendConfig::Scaled { node: "22nm".into() },
        ] {
            let j = cfg.to_json();
            assert_eq!(EnergyBackendConfig::from_json(&j), Ok(cfg.clone()));
            // And through the canonical writer/parser pair.
            let parsed = triad_util::json::parse(&j.to_string_pretty()).unwrap();
            assert_eq!(EnergyBackendConfig::from_json(&parsed), Ok(cfg));
        }
        assert!(EnergyBackendConfig::from_json(&Json::obj().set("kind", "nope")).is_err());
        assert!(EnergyBackendConfig::from_json(&Json::obj().set("kind", "table")).is_err());
    }

    #[test]
    fn build_resolves_every_kind() {
        assert_eq!(EnergyBackendConfig::Parametric.build().unwrap().label(), "mcpat");
        assert_eq!(
            EnergyBackendConfig::Scaled { node: "14nm".into() }.build().unwrap().label(),
            "scaled:14nm"
        );
        assert!(EnergyBackendConfig::Scaled { node: "3nm".into() }.build().is_err());
        assert!(EnergyBackendConfig::Table { path: "/no/such/file.json".into() }.build().is_err());
    }

    #[test]
    fn default_is_parametric() {
        assert_eq!(EnergyBackendConfig::default(), EnergyBackendConfig::Parametric);
        assert_eq!(EnergyBackendConfig::default().label(), "mcpat");
    }
}
