//! # triad-workload — workloads as time-varying programs
//!
//! The paper evaluates RM1–RM3 only on §IV-C mixes frozen at `t = 0`.
//! This crate makes the workload itself a first-class, serializable
//! object that can change while the simulator runs:
//!
//! * [`scenario`] — the Fig. 1 scenario taxonomy and the §IV-C steady-mix
//!   generator (moved here from `triad-sim`, which re-exports it for
//!   compatibility);
//! * [`spec`] — the [`WorkloadSpec`] DSL: steady §IV-C mixes, phased
//!   (piecewise-constant category schedules), bursty arrivals (Poisson and
//!   two-state MMPP on the deterministic `triad-util` PRNG), per-core
//!   churn schedules, and scaled synthetic suites (N× the 27-app Table II
//!   census with jittered phase positions);
//! * [`trace`] — the materialized [`WorkloadTrace`]: a sorted list of
//!   arrive/depart events on a global interval clock, serialized as
//!   canonical JSON (`triad-workload/v1`) and fingerprintable via
//!   `triad_util::hash` so campaign rows stay content-addressed.
//!
//! A spec *describes* a workload program; [`WorkloadSpec::materialize`]
//! expands it — deterministically, from its own seed — into the trace the
//! simulator replays. Cores may be vacant between arrivals (the simulator
//! charges idle-core power for those windows), an arrival on an occupied
//! core is a churn replacement with a cold restart of that core's phase
//! position, and the resource manager re-plans the whole system on every
//! arrival, churn and departure event.

pub mod scenario;
pub mod spec;
pub mod trace;

pub use scenario::{
    cell_probability, generate_workloads, sample_mix, scenario_of_pair, scenario_probability,
    Scenario, Workload,
};
pub use spec::{ArrivalProcess, Stage, WorkloadSpec};
pub use trace::{EventKind, TraceEvent, WorkloadTrace, TRACE_SCHEMA};
