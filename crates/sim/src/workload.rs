//! Compatibility re-export: the Fig. 1 scenario taxonomy and the §IV-C
//! workload generator moved to the dedicated `triad-workload` crate (which
//! also owns the dynamic [`WorkloadSpec`]/[`WorkloadTrace`] machinery).
//! Existing `triad_sim::workload::…` paths keep working through this shim.

pub use triad_workload::{
    cell_probability, generate_workloads, sample_mix, scenario_of_pair, scenario_probability,
    ArrivalProcess, EventKind, Scenario, Stage, TraceEvent, Workload, WorkloadSpec, WorkloadTrace,
};
