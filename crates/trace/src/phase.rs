//! Program-phase specifications and the deterministic trace generator.
//!
//! A [`PhaseSpec`] captures, in a dozen parameters, everything about a
//! program phase that the paper's resource trade-offs depend on:
//!
//! * **cache sensitivity** comes from the working-set mixture
//!   ([`MemRegion`]s): cyclic-sweep regions produce the sharp LRU miss-curve
//!   knee at an exact way count (a region of `k` way-capacities hits iff the
//!   allocation exceeds `k` ways — the classic LRU cliff of array-sweeping
//!   code), streaming regions give allocation-independent misses;
//! * **parallelism sensitivity** comes from the pointer-chase fraction
//!   (dependent misses cannot overlap regardless of core size) and the
//!   *miss spacing*: independent misses spaced `s` instructions apart
//!   overlap up to `window(c)/s` — the instruction-window size is the
//!   binding resource, so bigger cores overlap more (PS), while chased or
//!   very sparse misses are size-insensitive (PI);
//! * **ILP** comes from the dependency-distance distribution and the
//!   long-latency-op fraction;
//! * **branch behavior** from the branch fraction and misprediction rate.
//!
//! Generation is fully deterministic given `(spec, len, seed)`.

use crate::inst::{Inst, InstKind, Trace};
use triad_util::rand::rngs::StdRng;
use triad_util::rand::{Cutoff, RngExt, SeedableRng, UniformTable};

/// Index of a phase within an application.
pub type PhaseId = usize;

/// How a region's blocks are visited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Independent uniform references (soft, IRM-style miss curve).
    Uniform,
    /// Cyclic sequential walk (sharp LRU knee at `blocks/sets` ways; with
    /// blocks far beyond any allocation this degenerates to streaming).
    Sweep,
}

/// One component of a phase's memory working set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemRegion {
    /// Region size in 64-byte blocks.
    pub blocks: u64,
    /// Relative probability that a memory access targets this region.
    pub weight: f64,
    /// Visit order.
    pub pattern: AccessPattern,
}

/// Unscaled LLC blocks per way (256 KiB / 64 B) — a sweep over `k × 4096`
/// blocks has its LRU knee at `k` ways.
pub const BLOCKS_PER_WAY: u64 = 4096;

impl MemRegion {
    /// A uniformly reused region of `kib` KiB.
    pub const fn reuse_kib(kib: u64, weight: f64) -> Self {
        MemRegion { blocks: kib * 1024 / 64, weight, pattern: AccessPattern::Uniform }
    }

    /// A cyclic sweep sized to `ways` way-capacities: all its LLC accesses
    /// miss below `ways` allocated ways and all hit above (the LRU cliff).
    pub fn sweep_ways(ways: f64, weight: f64) -> Self {
        MemRegion {
            blocks: (ways * BLOCKS_PER_WAY as f64) as u64,
            weight,
            pattern: AccessPattern::Sweep,
        }
    }

    /// A streaming region of `mib` MiB (wrapping sequential walk far beyond
    /// any allocation: misses at every way count).
    pub const fn stream_mib(mib: u64, weight: f64) -> Self {
        MemRegion { blocks: mib * 1024 * 1024 / 64, weight, pattern: AccessPattern::Sweep }
    }
}

/// Parameter set describing one program phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Stable tag mixed into the RNG seed and the BBV signature.
    pub tag: u64,
    /// Fraction of instructions that are loads.
    pub load_frac: f64,
    /// Fraction of instructions that are stores.
    pub store_frac: f64,
    /// Fraction of instructions that are conditional branches.
    pub branch_frac: f64,
    /// Fraction of instructions that are long-latency arithmetic.
    pub longop_frac: f64,
    /// Probability that a branch is mispredicted.
    pub mispredict_rate: f64,
    /// Mean of the geometric dependency-distance distribution. Small values
    /// produce serial code (low ILP); large values produce independent
    /// instructions whose throughput scales with dispatch width.
    pub dep_mean: f64,
    /// Probability that an instruction has a second producer.
    pub dep2_prob: f64,
    /// Fraction of loads whose address depends on the previous load
    /// (pointer chasing — serializes misses, defeating MLP).
    pub chase_frac: f64,
    /// Mean run length of consecutive memory accesses to the same region
    /// (sticky region selection). `1.0` = independent draws. Long bursts of
    /// misses expose window-size-dependent MLP; short bursts fit every
    /// core's window.
    pub burst: f64,
    /// Probability that a non-chase memory operation computes its address
    /// from a recent producer (a normal sampled dependency) instead of an
    /// induction chain that runs ahead (address ready at dispatch).
    /// Streaming/array code sits near 0; irregular/compute code near 1.
    pub addr_dep: f64,
    /// Working-set mixture. Weights need not sum to 1; they are normalized.
    pub regions: Vec<MemRegion>,
}

impl PhaseSpec {
    /// Check internal consistency (fractions in range, non-empty regions if
    /// any memory instructions are requested).
    pub fn validate(&self) -> Result<(), String> {
        let mix = self.load_frac + self.store_frac + self.branch_frac + self.longop_frac;
        if !(0.0..=1.0).contains(&mix) {
            return Err(format!("instruction mix sums to {mix}, expected within [0,1]"));
        }
        for f in [
            self.load_frac,
            self.store_frac,
            self.branch_frac,
            self.longop_frac,
            self.mispredict_rate,
            self.chase_frac,
            self.dep2_prob,
            self.addr_dep,
        ] {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("fraction {f} outside [0,1]"));
            }
        }
        if self.dep_mean < 1.0 {
            return Err("dep_mean must be >= 1".into());
        }
        if self.burst < 1.0 {
            return Err("burst must be >= 1".into());
        }
        if (self.load_frac > 0.0 || self.store_frac > 0.0) && self.regions.is_empty() {
            return Err("memory instructions requested but no regions given".into());
        }
        if self.regions.iter().any(|r| r.weight < 0.0 || r.blocks == 0) {
            return Err("regions must have positive size and non-negative weight".into());
        }
        Ok(())
    }

    /// Generate `len` instructions for this phase.
    ///
    /// The same `(self, len, seed)` always yields the identical trace.
    pub fn generate(&self, len: usize, seed: u64) -> Trace {
        let mut insts = Vec::with_capacity(len);
        self.generate_stream(len, seed, |_, inst| insts.push(inst));
        Trace { insts }
    }

    /// Streaming form of [`PhaseSpec::generate`]: emit each instruction to
    /// `sink(i, inst)` in program order instead of materializing a
    /// [`Trace`]. The RNG draw sequence — and therefore every emitted
    /// instruction — is identical to [`PhaseSpec::generate`] with the same
    /// `(self, len, seed)`; `generate` is a thin collector over this.
    ///
    /// This is what lets the phase-database build classify the warmup
    /// prefix (cache-state-only) without ever allocating its `Inst`
    /// records.
    ///
    /// Internally every floating-point decision is replayed through the
    /// precomputed `DrawTables` — integer threshold compares on the raw
    /// 53-bit draws, bit-identical to the chained `random`/`random_bool`/
    /// `random_range` schedule (see [`triad_util::rand::Cutoff`] for the
    /// exactness argument, and `generate_stream_chained` for the reference
    /// implementation the property tests compare against).
    pub fn generate_stream(&self, len: usize, seed: u64, mut sink: impl FnMut(usize, Inst)) {
        self.validate().expect("invalid PhaseSpec");
        let mut rng = StdRng::seed_from_u64(seed ^ self.tag.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let t = DrawTables::new(self);
        // Per-region streaming cursors and address bases. Bases are spread
        // (1 TiB apart) so regions never alias in any cache level.
        let mut cursors = vec![0u64; self.regions.len()];
        let bases: Vec<u64> = (0..self.regions.len())
            .map(|i| (self.tag.wrapping_mul(31).wrapping_add(i as u64 + 1)) << 40)
            .collect();

        // Pointer walks chain within their own data structure: the producer
        // of a chase load is the previous load *to the same region*.
        let mut last_load_in: Vec<Option<usize>> = vec![None; self.regions.len()];
        let mut cur_region: Option<usize> = None;
        for i in 0..len {
            let x = rng.draw53();
            let is_load = t.kind_load.admits(x);
            let is_store = !is_load && t.kind_load_store.admits(x);
            let (kind, addr, chase, region) = if is_load || is_store {
                // Sticky region selection: with probability 1 − 1/burst the
                // access stays in the current region (runs of mean length
                // `burst`).
                let ri = match cur_region {
                    Some(r) if t.stay.sample(&mut rng) => r,
                    _ => {
                        let u = rng.draw53();
                        t.region_cum
                            .iter()
                            .position(|c| c.admits(u))
                            .unwrap_or(self.regions.len() - 1)
                    }
                };
                cur_region = Some(ri);
                let r = &self.regions[ri];
                let block = match r.pattern {
                    AccessPattern::Sweep => {
                        let b = cursors[ri];
                        // The cursor is always < blocks, so wrap-around is a
                        // compare, not a division.
                        let n = b + 1;
                        cursors[ri] = if n == r.blocks { 0 } else { n };
                        b
                    }
                    AccessPattern::Uniform => t.region_addr[ri].sample(&mut rng),
                };
                let a = bases[ri] + block * 64;
                let chase = is_load && last_load_in[ri].is_some() && t.chase.sample(&mut rng);
                (if is_load { InstKind::Load } else { InstKind::Store }, a, chase, Some(ri))
            } else if t.kind_thru_branch.admits(x) {
                (InstKind::Branch, 0, false, None)
            } else if t.kind_thru_longop.admits(x) {
                (InstKind::LongOp, 0, false, None)
            } else {
                (InstKind::Alu, 0, false, None)
            };

            // Memory operations compute their address from integer
            // induction/index chains that run ahead of the data flow, so a
            // non-chase memory op is address-ready at dispatch; only the
            // explicit `chase` flag models data-dependent addresses
            // (pointer walks), which serialize misses within a region.
            // Non-memory instructions consume arbitrary recent producers —
            // including loads — which is what makes consumers stall on
            // misses.
            // The two `0` arms stay separate on purpose: `addr_dep` must
            // consume its RNG draw for every non-chase memory op — including
            // at `i == 0` — to stay draw-for-draw aligned with the chained
            // reference generator it is proven bit-identical against.
            #[allow(clippy::if_same_then_else)]
            let dep1 = if chase {
                (i - last_load_in[region.unwrap()].unwrap()) as u32
            } else if kind.is_mem() && !t.addr_dep.sample(&mut rng) {
                0
            } else if i == 0 {
                0
            } else {
                (t.dep.sample(&mut rng) as u32).min(i as u32)
            };
            let dep2 = if !kind.is_mem() && t.dep2.sample(&mut rng) && i > 0 {
                (t.dep.sample(&mut rng) as u32).min(i as u32)
            } else {
                0
            };
            let mispredict = kind == InstKind::Branch && t.mispredict.sample(&mut rng);

            if kind == InstKind::Load {
                last_load_in[region.unwrap()] = Some(i);
            }
            sink(i, Inst { addr, dep1, dep2, kind, mispredict, chase });
        }
    }

    /// The pre-PR8 draw-chained generator, retained verbatim as the
    /// reference the tabled [`PhaseSpec::generate_stream`] is proven
    /// against (property tests) and benchmarked against
    /// (`trace_front`'s tabled-vs-chained gate). Not part of the public
    /// API surface.
    #[doc(hidden)]
    pub fn generate_stream_chained(
        &self,
        len: usize,
        seed: u64,
        mut sink: impl FnMut(usize, Inst),
    ) {
        self.validate().expect("invalid PhaseSpec");
        let mut rng = StdRng::seed_from_u64(seed ^ self.tag.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let total_w: f64 = self.regions.iter().map(|r| r.weight).sum();
        // Cumulative weights for region selection.
        let mut cum = Vec::with_capacity(self.regions.len());
        let mut acc = 0.0;
        for r in &self.regions {
            acc += r.weight / total_w.max(f64::MIN_POSITIVE);
            cum.push(acc);
        }
        let mut cursors = vec![0u64; self.regions.len()];
        let bases: Vec<u64> = (0..self.regions.len())
            .map(|i| (self.tag.wrapping_mul(31).wrapping_add(i as u64 + 1)) << 40)
            .collect();

        let mut last_load_in: Vec<Option<usize>> = vec![None; self.regions.len()];
        let mut cur_region: Option<usize> = None;
        let p_stay = 1.0 - 1.0 / self.burst;
        let dep_lo = (self.dep_mean * 0.5).ceil().max(1.0) as u32;
        let dep_hi = (self.dep_mean * 1.5).floor().max(dep_lo as f64) as u32;
        for i in 0..len {
            let u: f64 = rng.random();
            let is_load = u < self.load_frac;
            let is_store = !is_load && u < self.load_frac + self.store_frac;
            let (kind, addr, chase, region) = if is_load || is_store {
                let ri = self.pick_region(&mut rng, &cum, &mut cur_region, p_stay);
                let a = self.addr_in(&mut rng, ri, &mut cursors, &bases);
                let chase =
                    is_load && last_load_in[ri].is_some() && rng.random_bool(self.chase_frac);
                (if is_load { InstKind::Load } else { InstKind::Store }, a, chase, Some(ri))
            } else if u < self.load_frac + self.store_frac + self.branch_frac {
                (InstKind::Branch, 0, false, None)
            } else if u < self.load_frac + self.store_frac + self.branch_frac + self.longop_frac {
                (InstKind::LongOp, 0, false, None)
            } else {
                (InstKind::Alu, 0, false, None)
            };

            let dep1 = if chase {
                (i - last_load_in[region.unwrap()].unwrap()) as u32
            } else if kind.is_mem() && !rng.random_bool(self.addr_dep) {
                0
            } else {
                sample_dep(&mut rng, dep_lo, dep_hi, i)
            };
            let dep2 = if !kind.is_mem() && rng.random_bool(self.dep2_prob) {
                sample_dep(&mut rng, dep_lo, dep_hi, i)
            } else {
                0
            };
            let mispredict = kind == InstKind::Branch && rng.random_bool(self.mispredict_rate);

            if kind == InstKind::Load {
                last_load_in[region.unwrap()] = Some(i);
            }
            sink(i, Inst { addr, dep1, dep2, kind, mispredict, chase });
        }
    }

    /// Sticky region selection: with probability 1 − 1/burst the access
    /// stays in the current region, producing runs of mean length `burst`.
    fn pick_region(
        &self,
        rng: &mut StdRng,
        cum: &[f64],
        cur_region: &mut Option<usize>,
        p_stay: f64,
    ) -> usize {
        let ri = match *cur_region {
            Some(r) if rng.random_bool(p_stay) => r,
            _ => {
                let u: f64 = rng.random();
                cum.iter().position(|&c| u <= c).unwrap_or(cum.len() - 1)
            }
        };
        *cur_region = Some(ri);
        ri
    }

    /// Produce the next address within region `ri`.
    fn addr_in(&self, rng: &mut StdRng, ri: usize, cursors: &mut [u64], bases: &[u64]) -> u64 {
        let r = &self.regions[ri];
        let block = match r.pattern {
            AccessPattern::Sweep => {
                let b = cursors[ri];
                // The cursor is always < blocks, so wrap-around is a
                // compare, not a division.
                let n = b + 1;
                cursors[ri] = if n == r.blocks { 0 } else { n };
                b
            }
            AccessPattern::Uniform => rng.random_range(0..r.blocks),
        };
        bases[ri] + block * 64
    }

    /// Memory-instruction fraction (loads + stores).
    pub fn mem_frac(&self) -> f64 {
        self.load_frac + self.store_frac
    }

    /// A working-set-scaled copy of this phase for use with
    /// `CacheGeometry::table1_scaled(_, factor)`: every region shrinks by
    /// `factor` so that working-set-to-cache ratios — and therefore miss
    /// curves versus way count — are preserved while short traces reach
    /// steady state.
    pub fn scaled(&self, factor: u64) -> PhaseSpec {
        let mut p = self.clone();
        for r in &mut p.regions {
            r.blocks = (r.blocks / factor).max(16);
        }
        p
    }

    /// Bit-exact key of every field that drives trace generation. Two
    /// specs with equal keys produce identical instruction streams for any
    /// `(len, seed)` — the generator reads nothing else — so downstream
    /// decode/classify/simulate work keyed on `(decode_key, seed, ...)`
    /// can be shared across phases without approximation. `f64` fields are
    /// compared by bit pattern, which is exact (and strictly finer than
    /// `==`: it distinguishes `-0.0` from `0.0`, which the cutoff-table
    /// construction can also distinguish through rounding).
    pub fn decode_key(&self) -> Vec<u64> {
        let mut k = Vec::with_capacity(11 + 3 * self.regions.len());
        k.push(self.tag);
        for f in [
            self.load_frac,
            self.store_frac,
            self.branch_frac,
            self.longop_frac,
            self.mispredict_rate,
            self.dep_mean,
            self.dep2_prob,
            self.chase_frac,
            self.burst,
            self.addr_dep,
        ] {
            k.push(f.to_bits());
        }
        for r in &self.regions {
            k.push(r.blocks);
            k.push(r.weight.to_bits());
            k.push(match r.pattern {
                AccessPattern::Uniform => 0,
                AccessPattern::Sweep => 1,
            });
        }
        k
    }
}

/// Precomputed draw schedule for one [`PhaseSpec`]: every per-instruction
/// floating-point comparison and every Lemire rejection threshold in the
/// generator, tabled once up front.
///
/// The kind cutoffs are built from the *same left-associated cumulative
/// sums* the chained generator evaluates per instruction (`(lf + sf) +
/// bf` …), so the f64 rounding — and therefore every decision — is
/// identical; see [`Cutoff`] for why the float→integer conversion is
/// exact. `region_addr` carries one [`UniformTable`] per region (unused
/// for sweeps, whose cursor advance draws nothing).
struct DrawTables {
    kind_load: Cutoff,
    kind_load_store: Cutoff,
    kind_thru_branch: Cutoff,
    kind_thru_longop: Cutoff,
    stay: Cutoff,
    chase: Cutoff,
    addr_dep: Cutoff,
    dep2: Cutoff,
    mispredict: Cutoff,
    region_cum: Vec<Cutoff>,
    region_addr: Vec<UniformTable>,
    dep: UniformTable,
}

impl DrawTables {
    fn new(spec: &PhaseSpec) -> DrawTables {
        let lf = spec.load_frac;
        let ls = lf + spec.store_frac;
        let lsb = ls + spec.branch_frac;
        let lsbl = lsb + spec.longop_frac;
        let total_w: f64 = spec.regions.iter().map(|r| r.weight).sum();
        let mut acc = 0.0;
        let region_cum = spec
            .regions
            .iter()
            .map(|r| {
                acc += r.weight / total_w.max(f64::MIN_POSITIVE);
                Cutoff::le(acc)
            })
            .collect();
        let region_addr = spec.regions.iter().map(|r| UniformTable::new(0, r.blocks - 1)).collect();
        let dep_lo = (spec.dep_mean * 0.5).ceil().max(1.0) as u32;
        let dep_hi = (spec.dep_mean * 1.5).floor().max(dep_lo as f64) as u32;
        DrawTables {
            kind_load: Cutoff::lt(lf),
            kind_load_store: Cutoff::lt(ls),
            kind_thru_branch: Cutoff::lt(lsb),
            kind_thru_longop: Cutoff::lt(lsbl),
            stay: Cutoff::lt(1.0 - 1.0 / spec.burst),
            chase: Cutoff::lt(spec.chase_frac),
            addr_dep: Cutoff::lt(spec.addr_dep),
            dep2: Cutoff::lt(spec.dep2_prob),
            mispredict: Cutoff::lt(spec.mispredict_rate),
            region_cum,
            region_addr,
            dep: UniformTable::new(dep_lo as u64, dep_hi as u64),
        }
    }
}

/// Sample a dependency distance uniform in `[lo, hi]`, clamped to the
/// available history `i`.
///
/// Distances are uniform in `[⌈m/2⌉, ⌊3m/2⌋]` around `m = dep_mean`: a
/// low-variance distribution makes the dependence DAG's width sharply
/// ≈ `m`, so a core whose dispatch width exceeds `m` gains nothing —
/// which is what lets `dep_mean` separate parallelism-sensitive from
/// parallelism-insensitive code (fat-tailed distances would let wide
/// cores profit from the high-parallelism tail even at small means).
/// The bounds are hoisted out of the per-instruction loop by the caller.
#[inline]
fn sample_dep(rng: &mut StdRng, lo: u32, hi: u32, i: usize) -> u32 {
    if i == 0 {
        return 0;
    }
    rng.random_range(lo..=hi).min(i as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PhaseSpec {
        PhaseSpec {
            tag: 42,
            load_frac: 0.25,
            store_frac: 0.10,
            branch_frac: 0.15,
            longop_frac: 0.05,
            mispredict_rate: 0.05,
            dep_mean: 8.0,
            dep2_prob: 0.3,
            chase_frac: 0.2,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![MemRegion::reuse_kib(512, 1.0), MemRegion::stream_mib(64, 0.2)],
        }
    }

    #[test]
    fn tabled_generator_matches_chained_reference() {
        // The tabled draw schedule must replay the chained generator
        // bit-for-bit — same instructions from the same draws — across
        // the parameter corners: sticky bursts, pure sweeps, pure
        // uniform, chase-heavy, compute-only, and fractional mixes whose
        // cumulative sums are not exactly representable.
        let mut specs = vec![spec()];
        let mut s = spec();
        s.burst = 7.3;
        s.chase_frac = 0.9;
        s.regions = vec![
            MemRegion::sweep_ways(3.5, 0.61),
            MemRegion::reuse_kib(64, 0.17),
            MemRegion::stream_mib(8, 0.22),
        ];
        specs.push(s);
        let mut s = spec();
        s.load_frac = 0.1;
        s.store_frac = 0.2;
        s.branch_frac = 0.3;
        s.longop_frac = 0.4;
        s.mispredict_rate = 1.0;
        s.dep_mean = 1.0;
        s.dep2_prob = 1.0;
        specs.push(s);
        let mut s = spec();
        s.load_frac = 0.0;
        s.store_frac = 0.0;
        s.regions.clear();
        specs.push(s);
        for (si, s) in specs.iter().enumerate() {
            for seed in [0u64, 7, 0xC0FFEE] {
                let mut chained = Vec::new();
                s.generate_stream_chained(20_000, seed, |_, inst| chained.push(inst));
                let mut k = 0usize;
                s.generate_stream(20_000, seed, |i, inst| {
                    assert_eq!(i, k);
                    assert_eq!(inst, chained[i], "spec {si} seed {seed} diverged at inst {i}");
                    k += 1;
                });
                assert_eq!(k, chained.len());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec();
        let a = s.generate(10_000, 7);
        let b = s.generate(10_000, 7);
        assert_eq!(a.insts, b.insts);
    }

    #[test]
    fn different_seeds_differ() {
        let s = spec();
        let a = s.generate(10_000, 7);
        let b = s.generate(10_000, 8);
        assert_ne!(a.insts, b.insts);
    }

    #[test]
    fn mix_matches_parameters() {
        let s = spec();
        let t = s.generate(200_000, 1);
        let n = t.len() as f64;
        let lf = t.count_kind(InstKind::Load) as f64 / n;
        let sf = t.count_kind(InstKind::Store) as f64 / n;
        let bf = t.count_kind(InstKind::Branch) as f64 / n;
        assert!((lf - 0.25).abs() < 0.01, "load frac {lf}");
        assert!((sf - 0.10).abs() < 0.01, "store frac {sf}");
        assert!((bf - 0.15).abs() < 0.01, "branch frac {bf}");
    }

    #[test]
    fn chase_loads_point_at_previous_load_in_their_region() {
        // Pointer walks chain within their own data structure: the chase
        // producer is the most recent load to the same region (regions are
        // identified by their TiB-scale address window).
        let s = spec();
        let t = s.generate(50_000, 3);
        let mut last_load_in: std::collections::HashMap<u64, usize> = Default::default();
        for (i, inst) in t.insts.iter().enumerate() {
            if inst.chase {
                let ll = last_load_in
                    .get(&(inst.addr >> 40))
                    .copied()
                    .expect("chase load without a previous load in its region");
                assert_eq!(inst.dep1 as usize, i - ll, "chase dep must reach last region load");
            }
            if inst.kind == InstKind::Load {
                last_load_in.insert(inst.addr >> 40, i);
            }
        }
    }

    #[test]
    fn deps_never_reach_before_trace_start() {
        let t = spec().generate(5_000, 11);
        for (i, inst) in t.insts.iter().enumerate() {
            assert!(inst.dep1 as usize <= i);
            assert!(inst.dep2 as usize <= i);
        }
    }

    #[test]
    fn addresses_are_block_aligned_and_region_disjoint() {
        let s = spec();
        let t = s.generate(20_000, 5);
        for inst in &t.insts {
            if inst.kind.is_mem() {
                assert_eq!(inst.addr % 64, 0);
            }
        }
        // Two regions must occupy disjoint TiB-scale windows.
        let mut hi: Vec<u64> =
            t.insts.iter().filter(|i| i.kind.is_mem()).map(|i| i.addr >> 40).collect();
        hi.sort_unstable();
        hi.dedup();
        assert_eq!(hi.len(), 2, "expected exactly two distinct region windows");
    }

    #[test]
    fn streaming_region_walks_sequentially() {
        let s = PhaseSpec {
            tag: 1,
            load_frac: 1.0,
            store_frac: 0.0,
            branch_frac: 0.0,
            longop_frac: 0.0,
            mispredict_rate: 0.0,
            dep_mean: 8.0,
            dep2_prob: 0.0,
            chase_frac: 0.0,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![MemRegion {
                blocks: 1 << 20,
                weight: 1.0,
                pattern: AccessPattern::Sweep,
            }],
        };
        let t = s.generate(1000, 2);
        for (k, inst) in t.insts.iter().enumerate() {
            assert_eq!(inst.addr & 0xFF_FFFF_FFFF, (k as u64) * 64);
        }
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s = spec();
        s.load_frac = 1.2;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.dep_mean = 0.5;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.regions.clear();
        assert!(s.validate().is_err());
        let mut s = spec();
        s.regions[0].blocks = 0;
        assert!(s.validate().is_err());
        assert!(spec().validate().is_ok());
    }

    #[test]
    fn pure_compute_phase_needs_no_regions() {
        let s = PhaseSpec {
            tag: 9,
            load_frac: 0.0,
            store_frac: 0.0,
            branch_frac: 0.2,
            longop_frac: 0.1,
            mispredict_rate: 0.01,
            dep_mean: 16.0,
            dep2_prob: 0.2,
            chase_frac: 0.0,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![],
        };
        assert!(s.validate().is_ok());
        let t = s.generate(1000, 1);
        assert_eq!(t.count_kind(InstKind::Load), 0);
    }
}
