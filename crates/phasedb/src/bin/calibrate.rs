//! Calibration report: run the paper's §IV-C classification criteria over
//! the whole application suite and compare against Table II. This is the
//! tool used to calibrate (and re-verify) the synthetic application
//! library; `tests/table2_census.rs` enforces the same contract in CI.
use triad_phasedb::{build_suite, characterize_app, DbConfig};

fn main() {
    let t0 = std::time::Instant::now();
    let db = build_suite(&DbConfig::default());
    eprintln!("db built in {:.1}s", t0.elapsed().as_secs_f64());
    let mut ok = 0;
    println!(
        "{:<11} {:>7} {:>7} {:>7}  {:>5} {:>5} {:>5}  {:<6} {:<6} match",
        "app", "mpki4", "mpki8", "mpki12", "mlpS", "mlpM", "mlpL", "expect", "derive"
    );
    for e in &db.apps {
        let c = characterize_app(e);
        let m = c.derived == c.expected;
        if m {
            ok += 1;
        }
        println!(
            "{:<11} {:>7.2} {:>7.2} {:>7.2}  {:>5.2} {:>5.2} {:>5.2}  {:<6} {:<6} {}",
            c.name,
            c.mpki[0],
            c.mpki[1],
            c.mpki[2],
            c.mlp[0],
            c.mlp[1],
            c.mlp[2],
            c.expected.label(),
            c.derived.label(),
            if m { "ok" } else { "MISMATCH" }
        );
    }
    println!("{ok}/27 match Table II");
}
