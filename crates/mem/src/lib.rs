//! # triad-mem — DRAM timing model
//!
//! Table I memory system: 100 ns base latency, a contention-queue model and
//! 5 GB/s of bandwidth per core. The model is deliberately simple — a FIFO
//! service queue in front of a fixed-latency device — because that is
//! exactly what the paper simulates:
//!
//! * each request occupies the channel for `line / bandwidth`
//!   (64 B / 5 GB/s = 12.8 ns);
//! * a request arriving while the channel is busy queues behind the
//!   outstanding ones;
//! * completion is `queue delay + 100 ns` after arrival.
//!
//! The queue operates in *core cycles* so the out-of-order timing model can
//! use it directly at any DVFS point: construct it per run with
//! [`DramQueue::new`] giving the core frequency.

/// Table I DRAM parameters (per core).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramParams {
    /// Zero-load latency in seconds (100 ns).
    pub base_latency_s: f64,
    /// Peak bandwidth per core in bytes/second (5 GB/s).
    pub bandwidth_bps: f64,
    /// Transfer granularity in bytes (64 B line).
    pub line_bytes: f64,
}

impl DramParams {
    /// The paper's configuration.
    pub const fn table1() -> Self {
        DramParams { base_latency_s: 100e-9, bandwidth_bps: 5.0e9, line_bytes: 64.0 }
    }

    /// Channel occupancy per request, in seconds (12.8 ns).
    pub fn service_time_s(&self) -> f64 {
        self.line_bytes / self.bandwidth_bps
    }
}

impl Default for DramParams {
    fn default() -> Self {
        Self::table1()
    }
}

/// A FIFO contention queue in core-cycle units.
#[derive(Debug, Clone)]
pub struct DramQueue {
    /// Base (zero-load) latency in cycles at the configured core frequency.
    base_cycles: u64,
    /// Channel occupancy per request in 1/1024ths of a cycle (fixed point,
    /// keeping sub-cycle service times exact at high frequencies).
    service_fp: u64,
    /// Fixed-point cycle at which the channel becomes free. Widened to
    /// u128: `arrival_cycle << 10` wraps u64 for arrivals ≥ 2^54, and a
    /// saturated channel's horizon legitimately runs past the last arrival
    /// by the whole backlog, so the horizon math is done wide to stay exact
    /// over the full u64 cycle domain.
    next_free_fp: u128,
    /// Requests observed.
    pub requests: u64,
    /// Total queueing delay in cycles (diagnostic; excludes base latency).
    pub queue_cycles: u64,
}

const FP: u64 = 1024;
/// `log2(FP)` — the fixed-point scaling is a pure shift. Public so replay
/// loops that keep [`DramLaneState`] fields in parallel arrays (see
/// [`DramLaneState::parts`]) can inline the closed-form update.
pub const FP_SHIFT: u32 = 10;

impl DramQueue {
    /// Create a queue for a core running at `freq_hz`.
    pub fn new(params: DramParams, freq_hz: f64) -> Self {
        DramQueue {
            base_cycles: (params.base_latency_s * freq_hz).round() as u64,
            service_fp: (params.service_time_s() * freq_hz * FP as f64).round() as u64,
            next_free_fp: 0,
            requests: 0,
            queue_cycles: 0,
        }
    }

    /// Issue a request at `arrival_cycle`; returns its completion cycle.
    #[inline]
    pub fn request(&mut self, arrival_cycle: u64) -> u64 {
        let arrival_fp = (arrival_cycle as u128) << FP_SHIFT;
        let start = arrival_fp.max(self.next_free_fp);
        self.next_free_fp = start + self.service_fp as u128;
        self.requests += 1;
        let delay = ((start - arrival_fp) >> FP_SHIFT) as u64;
        self.queue_cycles += delay;
        arrival_cycle + delay + self.base_cycles
    }

    /// Zero-load latency in cycles.
    pub fn base_cycles(&self) -> u64 {
        self.base_cycles
    }

    /// Channel occupancy per request, rounded up to whole cycles. The
    /// amortized queueing delay any single request can add beyond the
    /// requests before it — used by cycle-bound proofs, not by the model.
    pub fn service_cycles_ceil(&self) -> u64 {
        self.service_fp.div_ceil(FP)
    }

    /// Reset channel state and counters.
    pub fn reset(&mut self) {
        self.next_free_fp = 0;
        self.requests = 0;
        self.queue_cycles = 0;
    }
}

/// Structure-of-arrays block of per-lane DRAM channels for the lockstep
/// engine's grid passes: one contiguous array per queue field, indexed by
/// lane, replacing a `Vec<DramQueue>` of interleaved scalar queues.
///
/// The per-request update ([`DramLaneState::request`]) is the closed-form
/// regime split of the scalar queue. `start = max(arrival_fp,
/// next_free_fp)` selects between the two regimes branch-freely:
///
/// * **unsaturated** (`arrival_fp > next_free_fp`): the request starts on
///   arrival with zero queueing delay;
/// * **saturated** (`arrival_fp <= next_free_fp`, i.e. `start ==
///   next_free_fp`): completions form the arithmetic progression
///   `next_free_fp + j·service_fp` independent of arrival, and the
///   queueing delay is the horizon lag `(next_free_fp − arrival_fp) / FP`
///   — emitted directly, no per-request branch or comparison chain.
///
/// Both `completion` and `queue_cycles` are bit-identical to
/// [`DramQueue::request`] for every in-bound input (property-tested in
/// `triad-uarch` across saturated / unsaturated / mixed regimes).
///
/// Cycle domain: the hot path stays in u64 fixed point, so callers must
/// keep `arrival_cycle < 2^54` (debug-asserted per request). The lockstep
/// engine enforces this with its conservative per-run cycle bound and
/// falls back to the widened scalar queue otherwise.
#[derive(Debug, Default, Clone)]
pub struct DramLanes {
    base_cycles: Vec<u64>,
    service_fp: Vec<u64>,
    next_free_fp: Vec<u64>,
    requests: Vec<u64>,
    queue_cycles: Vec<u64>,
}

/// One lane's queue state, detached from the [`DramLanes`] block so a
/// replay loop can keep it register-resident across a block of
/// instructions, then write it back with [`DramLanes::commit_lane`].
#[derive(Debug, Clone, Copy)]
pub struct DramLaneState {
    base_cycles: u64,
    service_fp: u64,
    next_free_fp: u64,
    requests: u64,
    queue_cycles: u64,
}

impl DramLanes {
    /// An empty block; [`DramLanes::reset`] sizes it per run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconfigure for one run: one fresh channel per frequency in
    /// `freqs_hz`, with all horizons and counters cleared. Allocations are
    /// reused across runs.
    pub fn reset(&mut self, params: DramParams, freqs_hz: impl Iterator<Item = f64>) {
        self.base_cycles.clear();
        self.service_fp.clear();
        self.next_free_fp.clear();
        self.requests.clear();
        self.queue_cycles.clear();
        for f in freqs_hz {
            self.base_cycles.push((params.base_latency_s * f).round() as u64);
            self.service_fp.push((params.service_time_s() * f * FP as f64).round() as u64);
            self.next_free_fp.push(0);
            self.requests.push(0);
            self.queue_cycles.push(0);
        }
    }

    /// Number of lanes configured by the last [`DramLanes::reset`].
    pub fn lanes(&self) -> usize {
        self.base_cycles.len()
    }

    /// True when every lane's horizon and counters are zero — the state
    /// [`DramLanes::reset`] leaves behind. The engine asserts this at run
    /// entry so scratch reuse across phases can never leak `requests` /
    /// `queue_cycles` between grid cells.
    pub fn is_fresh(&self) -> bool {
        self.next_free_fp.iter().all(|&v| v == 0)
            && self.requests.iter().all(|&v| v == 0)
            && self.queue_cycles.iter().all(|&v| v == 0)
    }

    /// Detach lane `k`'s state for a hot loop.
    #[inline]
    pub fn lane_state(&self, k: usize) -> DramLaneState {
        DramLaneState {
            base_cycles: self.base_cycles[k],
            service_fp: self.service_fp[k],
            next_free_fp: self.next_free_fp[k],
            requests: self.requests[k],
            queue_cycles: self.queue_cycles[k],
        }
    }

    /// Write lane `k`'s detached state back.
    #[inline]
    pub fn commit_lane(&mut self, k: usize, st: DramLaneState) {
        self.next_free_fp[k] = st.next_free_fp;
        self.requests[k] = st.requests;
        self.queue_cycles[k] = st.queue_cycles;
    }

    /// Requests lane `k` observed.
    pub fn requests(&self, k: usize) -> u64 {
        self.requests[k]
    }

    /// Total queueing delay lane `k` accumulated, in cycles.
    pub fn queue_cycles(&self, k: usize) -> u64 {
        self.queue_cycles[k]
    }
}

impl DramLaneState {
    /// An inert zero-frequency state — a placeholder for code paths that
    /// are statically known never to issue a request.
    pub const fn idle() -> Self {
        DramLaneState {
            base_cycles: 0,
            service_fp: 0,
            next_free_fp: 0,
            requests: 0,
            queue_cycles: 0,
        }
    }

    /// Issue a request at `arrival_cycle`; returns its completion cycle.
    /// Branch-free closed-form regime update — see [`DramLanes`].
    #[inline(always)]
    pub fn request(&mut self, arrival_cycle: u64) -> u64 {
        debug_assert!(arrival_cycle < 1 << 54, "u64 fixed-point arrival bound");
        let arrival_fp = arrival_cycle << FP_SHIFT;
        let start = arrival_fp.max(self.next_free_fp);
        self.next_free_fp = start + self.service_fp;
        self.requests += 1;
        let delay = (start - arrival_fp) >> FP_SHIFT;
        self.queue_cycles += delay;
        arrival_cycle + delay + self.base_cycles
    }

    /// Branch-free conditional request: evaluates the closed-form update
    /// for a request arriving at `arrival_cycle` unconditionally and
    /// commits the horizon advance and counters only when `go`. When `go`
    /// the state and return value are exactly those of
    /// [`DramLaneState::request`]; when `!go` the state is untouched (the
    /// returned completion is then meaningless and must be discarded).
    /// Replay loops whose "was this a DRAM access" decision is
    /// data-dependent use this so the commit compiles to conditional
    /// moves instead of a mispredict-prone branch.
    #[inline(always)]
    pub fn request_if(&mut self, go: bool, arrival_cycle: u64) -> u64 {
        debug_assert!(arrival_cycle < 1 << 54, "u64 fixed-point arrival bound");
        let arrival_fp = arrival_cycle << FP_SHIFT;
        let start = arrival_fp.max(self.next_free_fp);
        let delay = (start - arrival_fp) >> FP_SHIFT;
        self.next_free_fp = if go { start + self.service_fp } else { self.next_free_fp };
        self.requests += go as u64;
        self.queue_cycles += if go { delay } else { 0 };
        arrival_cycle + delay + self.base_cycles
    }

    /// Decompose into `(base_cycles, service_fp, next_free_fp, requests,
    /// queue_cycles)`. Group-major replay loops (the lockstep engine's
    /// fast path) keep these fields in lane-parallel arrays so the
    /// closed-form update (with the public [`FP_SHIFT`]) runs elementwise
    /// over homogeneous `u64` lanes — an array of structs would block the
    /// vectorizer. Reassemble with [`DramLaneState::from_parts`].
    pub fn parts(&self) -> (u64, u64, u64, u64, u64) {
        (self.base_cycles, self.service_fp, self.next_free_fp, self.requests, self.queue_cycles)
    }

    /// Inverse of [`DramLaneState::parts`].
    pub fn from_parts(
        base_cycles: u64,
        service_fp: u64,
        next_free_fp: u64,
        requests: u64,
        queue_cycles: u64,
    ) -> Self {
        DramLaneState { base_cycles, service_fp, next_free_fp, requests, queue_cycles }
    }

    /// Zero-load latency in cycles.
    pub fn base_cycles(&self) -> u64 {
        self.base_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        let p = DramParams::table1();
        assert!((p.base_latency_s - 100e-9).abs() < 1e-15);
        assert!((p.service_time_s() - 12.8e-9).abs() < 1e-15);
    }

    #[test]
    fn zero_load_latency_is_base() {
        // 2 GHz: 100 ns = 200 cycles.
        let mut q = DramQueue::new(DramParams::table1(), 2.0e9);
        assert_eq!(q.base_cycles(), 200);
        assert_eq!(q.request(1000), 1200);
        // A request long after: still zero-load.
        assert_eq!(q.request(100_000), 100_200);
        assert_eq!(q.queue_cycles, 0);
    }

    #[test]
    fn back_to_back_requests_queue_at_service_rate() {
        // 2 GHz: service = 12.8 ns = 25.6 cycles.
        let mut q = DramQueue::new(DramParams::table1(), 2.0e9);
        let c0 = q.request(0);
        let c1 = q.request(0);
        let c2 = q.request(0);
        assert_eq!(c0, 200);
        // Second starts 25.6 cycles later → 25 whole cycles of delay.
        assert_eq!(c1, 225);
        assert_eq!(c2, 251);
        assert!(q.queue_cycles > 0);
    }

    #[test]
    fn saturated_stream_throughput_matches_bandwidth() {
        let mut q = DramQueue::new(DramParams::table1(), 2.0e9);
        let n = 10_000u64;
        let mut last = 0;
        for _ in 0..n {
            last = q.request(0);
        }
        // n lines at 12.8 ns each = 128 µs = 256_000 cycles (+base).
        let expected = (n as f64 * 25.6) as u64 + 200;
        assert!((last as i64 - expected as i64).abs() < 32, "{last} vs {expected}");
    }

    #[test]
    fn spaced_requests_do_not_queue() {
        let mut q = DramQueue::new(DramParams::table1(), 2.0e9);
        for i in 0..100u64 {
            let arrival = i * 1000; // far beyond the 25.6-cycle service time
            assert_eq!(q.request(arrival), arrival + 200);
        }
        assert_eq!(q.queue_cycles, 0);
    }

    #[test]
    fn completion_is_monotone_for_fifo_arrivals() {
        let mut q = DramQueue::new(DramParams::table1(), 3.25e9);
        let mut prev = 0;
        for i in 0..1000u64 {
            let c = q.request(i * 3);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn frequency_scales_cycle_counts() {
        let q1 = DramQueue::new(DramParams::table1(), 1.0e9);
        let q3 = DramQueue::new(DramParams::table1(), 3.0e9);
        assert_eq!(q1.base_cycles(), 100);
        assert_eq!(q3.base_cycles(), 300);
    }

    #[test]
    fn request_is_exact_at_the_fixed_point_boundary() {
        // `arrival_cycle * 1024` used to wrap u64 at arrival = 2^54,
        // producing a bogus (tiny) horizon and a huge delay. The widened
        // queue must stay exact across the boundary.
        let mut q = DramQueue::new(DramParams::table1(), 2.0e9);
        for arrival in [(1u64 << 54) - 1, 1 << 54, (1 << 54) + 1, 1 << 60, u64::MAX >> 2] {
            let mut fresh = DramQueue::new(DramParams::table1(), 2.0e9);
            assert_eq!(fresh.request(arrival), arrival + 200, "zero-load at arrival {arrival}");
        }
        // Saturated across the boundary: requests arriving at a fixed huge
        // cycle must queue at the service rate, not wrap.
        let a = 1u64 << 54;
        let c0 = q.request(a);
        let c1 = q.request(a);
        let c2 = q.request(a);
        assert_eq!(c0, a + 200);
        assert_eq!(c1, a + 225);
        assert_eq!(c2, a + 251);
        assert!(q.queue_cycles > 0 && q.queue_cycles < 100);
    }

    #[test]
    fn lane_block_matches_scalar_queue_bit_for_bit() {
        // Saturated, unsaturated and mixed-regime arrival schedules, two
        // frequencies: the SoA block's completions and counters must equal
        // the scalar queue's exactly.
        let freqs = [1.0e9, 3.25e9];
        let mut lanes = DramLanes::new();
        lanes.reset(DramParams::table1(), freqs.iter().copied());
        assert!(lanes.is_fresh());
        assert_eq!(lanes.lanes(), 2);
        for (k, &f) in freqs.iter().enumerate() {
            let mut scalar = DramQueue::new(DramParams::table1(), f);
            let mut st = lanes.lane_state(k);
            let mut arrival = 0u64;
            let mut x = 12345u64 ^ k as u64;
            for i in 0..50_000u64 {
                // Alternate regimes: long saturated bursts (arrival frozen),
                // spaced idle gaps, and small pseudo-random steps.
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                arrival += match i % 100 {
                    0..=59 => 0,           // saturated burst
                    60..=89 => x % 7,      // mixed
                    _ => 1000 + (x % 512), // idle gap: unsaturated
                };
                assert_eq!(scalar.request(arrival), st.request(arrival), "req {i} lane {k}");
            }
            lanes.commit_lane(k, st);
            assert_eq!(lanes.requests(k), scalar.requests);
            assert_eq!(lanes.queue_cycles(k), scalar.queue_cycles);
        }
        assert!(!lanes.is_fresh());
        lanes.reset(DramParams::table1(), freqs.iter().copied());
        assert!(lanes.is_fresh(), "reset must clear horizons and counters");
    }

    #[test]
    fn request_if_commits_only_when_go_and_parts_round_trip() {
        // from_parts/parts must be exact inverses — the engine's fast path
        // shuttles lane state through these on every block boundary.
        let raw = (200u64, 26214u64, 123456u64 << FP_SHIFT, 17u64, 42u64);
        let st = DramLaneState::from_parts(raw.0, raw.1, raw.2, raw.3, raw.4);
        assert_eq!(st.parts(), raw);

        let mut lanes = DramLanes::new();
        lanes.reset(DramParams::table1(), [2.0e9].into_iter());
        let fresh = lanes.lane_state(0);

        // go = false: probe only. Counters and horizon must be untouched.
        let mut probed = fresh;
        probed.request_if(false, 100);
        assert_eq!(probed.parts(), fresh.parts(), "a skipped request must not mutate state");

        // go = true must match an unconditional request bit-for-bit, on a
        // saturated horizon where the queueing delay is nonzero.
        let mut a = fresh;
        let mut b = fresh;
        for arrival in [0u64, 0, 0, 5, 5, 1000] {
            assert_eq!(a.request(arrival), b.request_if(true, arrival));
        }
        assert_eq!(a.parts(), b.parts());
    }

    #[test]
    fn reset_clears_channel() {
        let mut q = DramQueue::new(DramParams::table1(), 2.0e9);
        for _ in 0..100 {
            q.request(0);
        }
        q.reset();
        assert_eq!(q.request(0), 200);
        assert_eq!(q.requests, 1);
    }
}
