//! Randomized property tests for the resource-manager optimizers.
//!
//! The global optimizer is checked against a brute-force enumeration of
//! way allocations on small instances (2–4 cores, curves up to 8 ways
//! wide), including `INFINITY`-infeasible curve entries, at both the
//! `optimize_partition` and the `plan_system` level. The local-optimizer
//! properties mirror the former proptest suite with a deterministic
//! workspace PRNG, so failures reproduce bit-exactly.

use triad_arch::{CoreSize, DvfsGrid, Setting};
use triad_rm::{
    local_optimize, optimize_partition, plan_system, EnergyCurve, IntervalModel, LocalPlan, RmKind,
};
use triad_util::rand::rngs::StdRng;
use triad_util::rand::{RngExt, SeedableRng};

/// Exhaustive reference optimizer: minimum of `Σ E_j(w_j)` over every
/// feasible allocation with `Σ w_j = total`.
fn brute_force(curves: &[EnergyCurve], total: usize) -> Option<(Vec<usize>, f64)> {
    fn rec(
        curves: &[EnergyCurve],
        i: usize,
        left: usize,
        acc: f64,
        cur: &mut Vec<usize>,
        best: &mut Option<(Vec<usize>, f64)>,
    ) {
        if i == curves.len() {
            if left == 0 && acc.is_finite() && best.as_ref().map(|(_, e)| acc < *e).unwrap_or(true)
            {
                *best = Some((cur.clone(), acc));
            }
            return;
        }
        let c = &curves[i];
        for w in c.min_w..=c.max_w().min(left) {
            cur.push(w);
            rec(curves, i + 1, left - w, acc + c.at(w), cur, best);
            cur.pop();
        }
    }
    let mut best = None;
    rec(curves, 0, total, 0.0, &mut Vec::new(), &mut best);
    best
}

/// A random small instance: `n` curves starting at `min_w` with `len`
/// points each, a fraction of which are infeasible.
fn random_curves(
    rng: &mut StdRng,
    n: usize,
    min_w: usize,
    len: usize,
    p_inf: f64,
) -> Vec<EnergyCurve> {
    (0..n)
        .map(|_| EnergyCurve {
            min_w,
            energy: (0..len)
                .map(|_| {
                    if rng.random_bool(p_inf) {
                        f64::INFINITY
                    } else {
                        0.01 + rng.random::<f64>() * 10.0
                    }
                })
                .collect(),
        })
        .collect()
}

#[test]
fn global_optimizer_matches_brute_force_on_small_instances() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for trial in 0..300 {
        let n = 2 + trial % 3; // 2..=4 cores
        let len = 3 + trial % 6; // 3..=8 way choices per curve
        let min_w = 1 + trial % 2;
        let p_inf = [0.0, 0.1, 0.35][trial % 3];
        let curves = random_curves(&mut rng, n, min_w, len, p_inf);
        // Totals from infeasibly small through infeasibly large.
        let lo = n * min_w;
        let hi = n * (min_w + len - 1);
        for total in (lo.saturating_sub(1))..=(hi + 1) {
            let fast = optimize_partition(&curves, total);
            let slow = brute_force(&curves, total);
            match (&fast, &slow) {
                (Some((ws, e, _)), Some((_, eb))) => {
                    assert!((e - eb).abs() < 1e-9, "trial {trial} total {total}: {e} vs {eb}");
                    assert_eq!(ws.iter().sum::<usize>(), total);
                    let realized: f64 = ws.iter().enumerate().map(|(i, &w)| curves[i].at(w)).sum();
                    assert!(
                        (realized - e).abs() < 1e-9,
                        "trial {trial}: assignment must realize the optimum"
                    );
                }
                (None, None) => {}
                _ => panic!("trial {trial} total {total}: fast {fast:?} vs slow {slow:?}"),
            }
        }
    }
}

#[test]
fn plan_system_matches_brute_force_including_infeasible_entries() {
    let grid = DvfsGrid::table1();
    let baseline = Setting::new(CoreSize::M, grid.baseline, 2);
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for trial in 0..200 {
        let n = 2 + trial % 3;
        let len = 4 + trial % 5; // 4..=8 way choices
        let min_w = 1;
        let curves = random_curves(&mut rng, n, min_w, len, 0.2);
        let plans: Vec<LocalPlan> = curves
            .iter()
            .map(|c| LocalPlan {
                min_w: c.min_w,
                energy: c.energy.clone(),
                setting: c
                    .energy
                    .iter()
                    .enumerate()
                    .map(|(i, e)| e.is_finite().then(|| Setting::new(CoreSize::M, 0, c.min_w + i)))
                    .collect(),
                ops: 1,
            })
            .collect();
        let total = n * (min_w + len - 1) / 2 + n; // somewhere mid-domain
        let decision = plan_system(&plans, total, baseline);
        match brute_force(&curves, total) {
            Some((_, eb)) => {
                assert!(
                    (decision.predicted_energy - eb).abs() < 1e-9,
                    "trial {trial}: {} vs brute-force {eb}",
                    decision.predicted_energy
                );
                assert_eq!(
                    decision.settings.iter().map(|s| s.ways).sum::<usize>(),
                    total,
                    "trial {trial}: Σw must hit the associativity budget"
                );
            }
            None => {
                // Infeasible: the planner falls back to the baseline.
                assert!(decision.predicted_energy.is_infinite(), "trial {trial}");
                assert!(decision.settings.iter().all(|s| *s == baseline), "trial {trial}");
            }
        }
    }
}

/// A randomized-but-lawful model for local-optimizer properties.
struct RandModel {
    grid: DvfsGrid,
    mem: Vec<f64>,
    compute_scale: f64,
}

impl IntervalModel for RandModel {
    fn predict(&self, s: Setting) -> (f64, f64) {
        let f = self.grid.point(s.vf).freq_hz;
        let v = self.grid.point(s.vf).volt;
        let t =
            self.compute_scale / f * 4.0 / s.core.dispatch_width() as f64 + self.mem[s.ways - 2];
        let p = [1.4, 2.8, 5.5][s.core.index()] * v * v * (f / 2.0e9) + 0.5 * v;
        (t, p * t)
    }
}

fn random_model(rng: &mut StdRng) -> RandModel {
    // Monotone non-increasing memory curve over ways.
    let mut mem: Vec<f64> = (0..15).map(|_| 1.0e-11 + rng.random::<f64>() * 4.9e-10).collect();
    mem.sort_by(|a, b| b.total_cmp(a));
    RandModel { grid: DvfsGrid::table1(), mem, compute_scale: 0.3 + rng.random::<f64>() * 2.7 }
}

#[test]
fn local_plans_respect_qos() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for trial in 0..40 {
        let model = random_model(&mut rng);
        let baseline = Setting::new(CoreSize::M, model.grid.baseline, 8);
        let (t_base, _) = model.predict(baseline);
        for kind in RmKind::ALL {
            let plan = local_optimize(&model, kind, baseline, &model.grid, 2..=16, 1.0);
            assert!(plan.energy_at(8).is_finite(), "trial {trial} {kind}");
            for w in 2..=16 {
                if let Some(s) = plan.setting_at(w) {
                    let (t, e) = model.predict(s);
                    assert!(t <= t_base * (1.0 + 1e-12), "trial {trial} {kind} w={w}");
                    assert!((e - plan.energy_at(w)).abs() < 1e-15);
                    assert_eq!(s.ways, w);
                }
            }
        }
    }
}

#[test]
fn controller_hierarchy_dominates() {
    let mut rng = StdRng::seed_from_u64(0xD0E);
    for trial in 0..40 {
        let model = random_model(&mut rng);
        let baseline = Setting::new(CoreSize::M, model.grid.baseline, 8);
        let p1 = local_optimize(&model, RmKind::Rm1, baseline, &model.grid, 2..=16, 1.0);
        let p2 = local_optimize(&model, RmKind::Rm2, baseline, &model.grid, 2..=16, 1.0);
        let p3 = local_optimize(&model, RmKind::Rm3, baseline, &model.grid, 2..=16, 1.0);
        let p3f = local_optimize(&model, RmKind::Rm3Full, baseline, &model.grid, 2..=16, 1.0);
        for w in 2..=16 {
            assert!(p2.energy_at(w) <= p1.energy_at(w) + 1e-18, "trial {trial} w={w}");
            assert!(p3.energy_at(w) <= p2.energy_at(w) + 1e-18, "trial {trial} w={w}");
            assert!(p3f.energy_at(w) <= p3.energy_at(w) + 1e-18, "trial {trial} w={w}");
        }
    }
}
