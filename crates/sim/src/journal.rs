//! Durable row journal: the campaign's crash-safe resume substrate.
//!
//! A journaled campaign appends one JSON-Lines record per completed row:
//!
//! ```text
//! {"schema":"triad-journal/v1","key":"<hex>","digest":"<hex>","row":{...}}
//! ```
//!
//! * `key` is the row's **resume key** — a [`Fingerprint`] over the
//!   spec's canonical JSON, the materialized workload-trace fingerprint
//!   and the energy-backend label (see
//!   [`resume_key`](crate::campaign::resume_key)) — so a resumed campaign
//!   can re-key completed rows without re-simulating them, and any spec
//!   change re-keys the row instead of serving stale results;
//! * `digest` is a SHA-256 integrity check over the key and the row's
//!   exact canonical serialization, so torn or bit-rotted records are
//!   detected, dropped, and re-simulated rather than trusted;
//! * each record is written with a **single `O_APPEND` `write_all`** (the
//!   same discipline as `triad_util::bench`'s JSON-Lines records), so
//!   concurrent campaign workers cannot interleave bytes mid-record and a
//!   crash can tear at most the final line.
//!
//! [`load`] tolerates exactly the states a killed process leaves behind:
//! a torn final line is truncated away (and the truncation persisted, so
//! the file is clean for this run's appends), records with a wrong digest
//! or unparseable interior are dropped, and duplicated keys keep their
//! first occurrence. Every recovery action is counted through
//! `triad-telemetry` (`journal.*` counters).

use std::collections::HashMap;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use triad_telemetry::Counter;
use triad_util::failpoint::FailPoint;
use triad_util::hash::Fingerprint;
use triad_util::json::{parse, Json};

/// Journal record schema tag (also the digest domain separator).
pub const SCHEMA: &str = "triad-journal/v1";

/// Injected-fault site on the append write (exercises the bounded-retry
/// path; `error` faults that outlast the retries degrade durability, they
/// never fail the campaign).
pub static APPEND_FP: FailPoint = FailPoint::new("journal.append");
/// Injected-fault site evaluated **after** a record is durably appended —
/// arm it with `abort` to kill the process deterministically mid-campaign
/// (`TRIAD_FAILPOINTS="journal.appended=every(3):abort"`).
pub static APPENDED_FP: FailPoint = FailPoint::new("journal.appended");

static RECORDS_APPENDED: Counter = Counter::new("journal.records_appended");
static RECORDS_LOADED: Counter = Counter::new("journal.records_loaded");
static TORN_TRUNCATED: Counter = Counter::new("journal.torn_truncated");
static CORRUPT_DROPPED: Counter = Counter::new("journal.corrupt_dropped");
static DUPLICATE_DROPPED: Counter = Counter::new("journal.duplicate_dropped");
static APPEND_RETRIES: Counter = Counter::new("journal.append_retry");
static APPEND_FAILED: Counter = Counter::new("journal.append_failed");

/// Integrity digest of one record: SHA-256 over the resume key and the
/// row's canonical compact serialization, domain-separated by [`SCHEMA`].
pub fn record_digest(key: &str, row_text: &str) -> String {
    let mut f = Fingerprint::new(SCHEMA);
    f.str(key).str(row_text);
    f.hex()
}

/// Transient-write retry budget: attempts (first try included) and the
/// deterministic backoff (1 ms, 2 ms, 4 ms — fixed, not randomized, so
/// fault schedules replay exactly).
const WRITE_ATTEMPTS: u32 = 3;

pub(crate) fn backoff(attempt: u32) {
    std::thread::sleep(std::time::Duration::from_millis(1 << attempt));
}

/// An open, append-only row journal.
#[derive(Debug)]
pub struct RowJournal {
    path: PathBuf,
    file: File,
    /// A write failed, so the file tail may hold a partial, unterminated
    /// line (e.g. ENOSPC mid-`write_all`). The next write leads with a
    /// `'\n'` that closes any such prefix off as its own line — dropped
    /// on load as corrupt (or skipped when empty) — so later records
    /// still parse instead of gluing onto the fragment.
    dirty: AtomicBool,
}

impl RowJournal {
    /// Open `path` for appending, creating it (and its parent directory)
    /// if missing. `fresh` truncates any existing content first — the
    /// non-resume mode, where stale rows from an unrelated run must not
    /// survive into this journal.
    pub fn open(path: &Path, fresh: bool) -> std::io::Result<RowJournal> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        if fresh {
            File::create(path)?;
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(RowJournal { path: path.to_path_buf(), file, dirty: AtomicBool::new(false) })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one completed row under its resume key: one complete line,
    /// one `write_all`, with bounded deterministic retry on transient
    /// write failures. A failure that outlasts the retries is reported
    /// (counter + stderr warning) but never propagated — the journal is a
    /// durability aid; losing a record only costs a re-simulation on
    /// resume, while failing the campaign would cost every row.
    pub fn append(&self, key: &str, row: &Json) {
        let row_text = row.to_string_compact();
        let digest = record_digest(key, &row_text);
        let mut line = Json::obj()
            .set("schema", SCHEMA)
            .set("key", key)
            .set("digest", digest)
            .set("row", row.clone())
            .to_string_compact();
        line.push('\n');
        // Workers share this O_APPEND file, so a partial prefix left by a
        // failed write cannot be truncated away (that could clobber a
        // concurrent worker's bytes). Instead, any write after a failure
        // — the retry below, or the next row's append after an exhausted
        // retry budget — leads with a '\n' that terminates the fragment
        // as a corrupt (dropped-on-load) line of its own.
        let terminated = format!("\n{line}");
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 0..WRITE_ATTEMPTS {
            if attempt > 0 {
                APPEND_RETRIES.incr();
                backoff(attempt - 1);
            }
            let buf = if self.dirty.swap(false, Ordering::Relaxed) { &terminated } else { &line };
            match APPEND_FP.check_io().and_then(|()| (&self.file).write_all(buf.as_bytes())) {
                Ok(()) => {
                    RECORDS_APPENDED.incr();
                    // Crash site for kill-and-resume tests: the record
                    // above is durable, everything after this instant is
                    // recoverable work.
                    let _ = APPENDED_FP.fire();
                    return;
                }
                Err(e) => {
                    self.dirty.store(true, Ordering::Relaxed);
                    last_err = Some(e);
                }
            }
        }
        APPEND_FAILED.incr();
        eprintln!(
            "journal: could not append row to {} after {WRITE_ATTEMPTS} attempts: {} \
             (row stays valid; resume will re-simulate it)",
            self.path.display(),
            last_err.expect("retry loop ran")
        );
    }
}

/// The validated content of a journal file.
#[derive(Debug, Default)]
pub struct LoadedJournal {
    /// Usable rows by resume key (first occurrence wins).
    pub rows: HashMap<String, Json>,
    /// A torn final line was found and truncated away.
    pub torn_truncated: bool,
    /// Interior records dropped for parse/digest/schema failures.
    pub corrupt_dropped: usize,
    /// Re-appearing keys dropped (first occurrence kept).
    pub duplicates_dropped: usize,
}

/// Read and validate a journal file, persisting the torn-tail truncation
/// (if any) so subsequent appends continue a clean file.
///
/// Only the **final** line may legitimately be torn — records are single
/// `O_APPEND` writes, so a crash cuts the tail, never the middle. Any
/// final line without a trailing newline counts as torn, *even one that
/// parses and passes its digest* (a partial write can end exactly at the
/// closing brace; a successful append always ends in `'\n'`), so the file
/// is newline-terminated before this run's appends. An interior line that
/// fails to parse, names a different schema, or does not match its digest
/// is corruption: the record is dropped (and counted), the rest of the
/// file stays usable.
pub fn load(path: &Path) -> std::io::Result<LoadedJournal> {
    let text = std::fs::read_to_string(path)?;
    let mut loaded = LoadedJournal::default();
    let mut good_bytes = 0usize;

    let mut offset = 0usize;
    let mut pieces: Vec<(usize, &str, bool)> = Vec::new(); // (start, line, complete)
    while offset < text.len() {
        match text[offset..].find('\n') {
            Some(rel) => {
                pieces.push((offset, &text[offset..offset + rel], true));
                offset += rel + 1;
            }
            None => {
                pieces.push((offset, &text[offset..], false));
                offset = text.len();
            }
        }
    }

    for (start, line, complete) in &pieces {
        if !*complete {
            // The unterminated final line of a killed writer is torn even
            // when it parses and passes its digest: a successful append
            // always ends in '\n', so at minimum the newline is missing.
            // Left in place, the next O_APPEND would glue its record onto
            // this line and a later load would drop both. Truncate it
            // away; the row (if any) simply re-simulates.
            loaded.torn_truncated = true;
            TORN_TRUNCATED.incr();
            continue;
        }
        if line.is_empty() {
            good_bytes = start + 1;
            continue;
        }
        let record = parse(line).ok().filter(valid_record);
        match record {
            Some(r) => {
                let key = match r.get("key") {
                    Some(Json::Str(k)) => k.clone(),
                    _ => unreachable!("valid_record checked the key"),
                };
                let row = r.get("row").expect("valid_record checked the row").clone();
                match loaded.rows.entry(key) {
                    std::collections::hash_map::Entry::Occupied(_) => {
                        loaded.duplicates_dropped += 1;
                        DUPLICATE_DROPPED.incr();
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        RECORDS_LOADED.incr();
                        slot.insert(row);
                    }
                }
                good_bytes = start + line.len() + 1;
            }
            None => {
                loaded.corrupt_dropped += 1;
                CORRUPT_DROPPED.incr();
                good_bytes = start + line.len() + 1;
            }
        }
    }

    if loaded.torn_truncated {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(good_bytes as u64)?;
    }
    Ok(loaded)
}

/// Schema, digest and shape validation of one parsed record.
fn valid_record(r: &Json) -> bool {
    if r.get("schema") != Some(&Json::Str(SCHEMA.into())) {
        return false;
    }
    let (Some(Json::Str(key)), Some(Json::Str(digest)), Some(row)) =
        (r.get("key"), r.get("digest"), r.get("row"))
    else {
        return false;
    };
    *digest == record_digest(key, &row.to_string_compact())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("triad-journal-test-{tag}-{}.jsonl", std::process::id()))
    }

    fn row(i: i64) -> Json {
        Json::obj().set("i", i).set("x", 0.5 * i as f64)
    }

    #[test]
    fn append_then_load_round_trips() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let j = RowJournal::open(&path, true).unwrap();
        j.append("k1", &row(1));
        j.append("k2", &row(2));
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.rows.len(), 2);
        assert_eq!(loaded.rows["k1"], row(1));
        assert_eq!(loaded.rows["k2"], row(2));
        assert!(!loaded.torn_truncated);
        assert_eq!((loaded.corrupt_dropped, loaded.duplicates_dropped), (0, 0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fresh_open_truncates_resume_open_appends() {
        let path = temp_path("fresh");
        let _ = std::fs::remove_file(&path);
        RowJournal::open(&path, true).unwrap().append("old", &row(0));
        RowJournal::open(&path, false).unwrap().append("new", &row(1));
        assert_eq!(load(&path).unwrap().rows.len(), 2, "resume open keeps prior records");
        RowJournal::open(&path, true).unwrap().append("only", &row(2));
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.rows.len(), 1, "fresh open starts over");
        assert!(loaded.rows.contains_key("only"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_truncated_and_journal_stays_appendable() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let j = RowJournal::open(&path, true).unwrap();
        j.append("k1", &row(1));
        drop(j);
        // Simulate a crash mid-append: a partial record with no newline.
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"schema\":\"triad-journal/v1\",\"key\":\"k2\",\"dig").unwrap();
        drop(f);

        let before = std::fs::metadata(&path).unwrap().len();
        let loaded = load(&path).unwrap();
        assert!(loaded.torn_truncated);
        assert_eq!(loaded.rows.len(), 1);
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before, "truncation must be persisted");

        // The truncated file is clean: appends and reloads keep working.
        RowJournal::open(&path, false).unwrap().append("k3", &row(3));
        let reloaded = load(&path).unwrap();
        assert!(!reloaded.torn_truncated);
        assert_eq!(reloaded.rows.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parseable_unterminated_tail_is_torn_and_truncated() {
        let path = temp_path("noeol");
        let _ = std::fs::remove_file(&path);
        let j = RowJournal::open(&path, true).unwrap();
        j.append("k1", &row(1));
        j.append("k2", &row(2));
        drop(j);
        // A partial write can end exactly at the closing brace: the line
        // parses and passes its digest, but the newline is missing.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.trim_end_matches('\n')).unwrap();

        let loaded = load(&path).unwrap();
        assert!(loaded.torn_truncated, "a missing final newline is a torn tail");
        assert_eq!(loaded.rows.len(), 1, "the unterminated record is not trusted");
        assert!(!loaded.rows.contains_key("k2"));
        let repaired = std::fs::read_to_string(&path).unwrap();
        assert!(repaired.ends_with('\n'), "load must leave the file newline-terminated");

        // The next O_APPEND therefore starts a fresh line instead of
        // gluing onto the old record's bytes.
        RowJournal::open(&path, false).unwrap().append("k2", &row(2));
        let reloaded = load(&path).unwrap();
        assert!(!reloaded.torn_truncated);
        assert_eq!(reloaded.corrupt_dropped, 0);
        assert_eq!(reloaded.rows.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_keys_keep_first_occurrence() {
        let path = temp_path("dup");
        let _ = std::fs::remove_file(&path);
        let j = RowJournal::open(&path, true).unwrap();
        j.append("k", &row(1));
        j.append("k", &row(2));
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.duplicates_dropped, 1);
        assert_eq!(loaded.rows["k"], row(1), "first occurrence wins");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_digest_and_wrong_schema_records_are_dropped() {
        let path = temp_path("digest");
        let _ = std::fs::remove_file(&path);
        let j = RowJournal::open(&path, true).unwrap();
        j.append("k1", &row(1));
        j.append("k2", &row(2));
        drop(j);
        // Flip a byte inside k1's row payload, keeping the line parseable.
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("\"i\":1", "\"i\":7", 1);
        assert_ne!(text, tampered);
        std::fs::write(&path, &tampered).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.corrupt_dropped, 1);
        assert_eq!(loaded.rows.len(), 1, "only the intact record survives");
        assert_eq!(loaded.rows["k2"], row(2));
        assert!(!loaded.torn_truncated, "a complete bad line is corruption, not a torn tail");

        // A record under a foreign schema is dropped the same way.
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"schema\":\"other/v9\",\"key\":\"x\",\"digest\":\"00\",\"row\":{}}\n")
            .unwrap();
        drop(f);
        assert_eq!(load(&path).unwrap().corrupt_dropped, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn digest_separates_key_and_row() {
        assert_ne!(record_digest("ab", "{}"), record_digest("a", "b{}"));
        assert_ne!(record_digest("k", "{\"a\":1}"), record_digest("k", "{\"a\":2}"));
    }
}
