//! Minimal JSON document model with a canonical writer and a streaming
//! [`parse`]r (the writer's inverse).
//!
//! Campaign results must serialize byte-identically across runs and thread
//! counts, so the writer is deliberately boring: object keys keep insertion
//! order, floats use Rust's shortest round-trip formatting, non-finite
//! floats become `null`, and indentation is fixed two-space. Because the
//! float encoding is shortest-round-trip, `write → parse` reproduces every
//! finite `f64` bit-exactly — the property the persisted phase database
//! relies on.

use std::fmt::Write as _;

pub use crate::json_parse::{parse, ParseError, ParseEvent, Parser};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Start an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field to an object (panics on non-objects).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Compact single-line encoding.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty two-space-indented encoding with a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Shortest round-trip float; exponent form for extreme
                    // magnitudes (Rust's `{}` would print every digit), and
                    // a forced marker so integral values stay recognizably
                    // floating point.
                    let s = if *x != 0.0 && (x.abs() >= 1e15 || x.abs() < 1e-4) {
                        format!("{x:e}")
                    } else {
                        format!("{x}")
                    };
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, level, '[', ']', items.len(), |o, i| {
                items[i].write(o, indent, level + 1)
            }),
            Json::Obj(fields) => write_seq(out, indent, level, '{', '}', fields.len(), |o, i| {
                let (k, v) = &fields[i];
                write_escaped(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                v.write(o, indent, level + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (level + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::Int(i as i64)
    }
}
impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i as i64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_compact_encoding() {
        let doc = Json::obj()
            .set("name", "fig6")
            .set("cores", 8usize)
            .set("savings", vec![0.5f64, 1.0, 2.25e-3])
            .set("ok", true)
            .set("none", Json::Null);
        assert_eq!(
            doc.to_string_compact(),
            r#"{"name":"fig6","cores":8,"savings":[0.5,1.0,0.00225],"ok":true,"none":null}"#
        );
    }

    #[test]
    fn escaping_and_nonfinite() {
        let doc = Json::obj().set("s", "a\"b\\c\nd").set("inf", f64::INFINITY);
        assert_eq!(doc.to_string_compact(), r#"{"s":"a\"b\\c\nd","inf":null}"#);
    }

    #[test]
    fn pretty_is_stable() {
        let doc = Json::obj().set("a", vec![1i64, 2]).set("b", Json::obj());
        assert_eq!(doc.to_string_pretty(), "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}\n");
    }

    #[test]
    fn floats_round_trip_shortest() {
        assert_eq!(Json::Num(0.1).to_string_compact(), "0.1");
        assert_eq!(Json::Num(3.0).to_string_compact(), "3.0");
        assert_eq!(Json::Num(1e300).to_string_compact(), "1e300");
        assert_eq!(Json::Num(2.5e-7).to_string_compact(), "2.5e-7");
        assert_eq!(Json::Num(0.0).to_string_compact(), "0.0");
        assert_eq!(Json::Num(-1.5e16).to_string_compact(), "-1.5e16");
    }

    #[test]
    fn get_finds_fields() {
        let doc = Json::obj().set("x", 1i64);
        assert_eq!(doc.get("x"), Some(&Json::Int(1)));
        assert_eq!(doc.get("y"), None);
    }
}
