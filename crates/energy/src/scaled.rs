//! The technology-scaling backend: per-node leakage/dynamic factors over
//! the parametric base.
//!
//! The paper's constants target a 32 nm-class out-of-order design (§IV-A).
//! Process shrinks reduce switched capacitance — and therefore dynamic
//! power at iso-V/f — faster than they reduce leakage, which is the
//! post-Dennard trend that motivates re-checking the RM's savings at other
//! nodes: as the static share grows, down-volting buys relatively less and
//! the core-adaptation axis gains weight. [`ScaledBackend`] applies a
//! [`TechNode`]'s `(dynamic_scale, leakage_scale)` pair to the parametric
//! [`EnergyModel`]: dynamic core power and the (on-chip) uncore scale by
//! the dynamic factor, static core power by the leakage factor, and the
//! off-chip DRAM access energy is left untouched.
//!
//! The factor pairs are ITRS-magnitude capacitance/leakage trends per
//! full-node shrink from the 32 nm base — deliberately round numbers meant
//! for sensitivity sweeps, not sign-off.

use crate::{EnergyBackend, EnergyModel};
use triad_arch::{CoreSize, VfPoint};

/// A process node's scaling factors relative to the 32 nm base model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechNode {
    /// Node name as spelled in configs and reports (`"14nm"`).
    pub name: &'static str,
    /// Dynamic-power factor at iso-V/f (switched-capacitance shrink).
    pub dynamic_scale: f64,
    /// Static-power factor (leakage shrinks slower than capacitance).
    pub leakage_scale: f64,
}

impl TechNode {
    /// Known nodes, largest geometry first. `32nm` is the identity node of
    /// the parametric calibration.
    pub const ALL: [TechNode; 4] = [
        TechNode { name: "32nm", dynamic_scale: 1.0, leakage_scale: 1.0 },
        TechNode { name: "22nm", dynamic_scale: 0.71, leakage_scale: 0.85 },
        TechNode { name: "14nm", dynamic_scale: 0.50, leakage_scale: 0.74 },
        TechNode { name: "7nm", dynamic_scale: 0.33, leakage_scale: 0.65 },
    ];

    /// Look a node up by its name (case-sensitive, as reported).
    pub fn by_name(name: &str) -> Option<TechNode> {
        TechNode::ALL.iter().copied().find(|n| n.name == name)
    }
}

/// A parametric model re-scaled to another process node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledBackend {
    /// The 32 nm-calibrated base model.
    pub base: EnergyModel,
    /// The target node's factors.
    pub node: TechNode,
}

impl ScaledBackend {
    /// Scale `base` to `node`.
    pub fn new(base: EnergyModel, node: TechNode) -> Self {
        ScaledBackend { base, node }
    }
}

impl EnergyBackend for ScaledBackend {
    fn label(&self) -> String {
        format!("scaled:{}", self.node.name)
    }

    fn core_dynamic_power(&self, c: CoreSize, vf: VfPoint, util: f64) -> f64 {
        self.base.core_dynamic_power(c, vf, util) * self.node.dynamic_scale
    }

    fn core_static_power(&self, c: CoreSize, vf: VfPoint) -> f64 {
        self.base.core_static_power(c, vf) * self.node.leakage_scale
    }

    fn dram_energy_per_access_j(&self) -> f64 {
        // DRAM is off-chip: the core's process node does not scale it.
        self.base.dram_energy_per_access_j
    }

    fn uncore_w_per_core(&self) -> f64 {
        self.base.uncore_w_per_core * self.node.dynamic_scale
    }

    fn dyn_ratio(&self, target: CoreSize, current: CoreSize) -> f64 {
        // The node factor cancels in the size ratio.
        self.base.dyn_ratio(target, current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_arch::DvfsGrid;

    #[test]
    fn identity_node_reproduces_the_base_model() {
        let base = EnergyModel::default_model();
        let s = ScaledBackend::new(base, TechNode::by_name("32nm").unwrap());
        let grid = DvfsGrid::table1();
        for c in CoreSize::ALL {
            for (_, vf) in grid.iter() {
                assert_eq!(s.core_power(c, vf, 0.7), base.core_power(c, vf, 0.7));
            }
        }
        assert_eq!(s.dram_energy(5), base.dram_energy(5));
        assert_eq!(s.uncore_energy(4, 2.0), base.uncore_energy(4, 2.0));
    }

    #[test]
    fn smaller_nodes_burn_less_power_but_grow_the_static_share() {
        let base = EnergyModel::default_model();
        let grid = DvfsGrid::table1();
        let vf = grid.baseline_point();
        let mut prev_power = f64::INFINITY;
        let mut prev_static_share = 0.0;
        for node in TechNode::ALL {
            let s = ScaledBackend::new(base, node);
            let p = s.core_power(CoreSize::M, vf, 0.8);
            let share = s.core_static_power(CoreSize::M, vf) / p;
            assert!(p < prev_power, "{}: power must shrink with the node", node.name);
            assert!(
                share > prev_static_share,
                "{}: leakage share must grow as dynamic shrinks faster",
                node.name
            );
            prev_power = p;
            prev_static_share = share;
        }
    }

    #[test]
    fn dram_energy_is_node_independent() {
        let base = EnergyModel::default_model();
        for node in TechNode::ALL {
            let s = ScaledBackend::new(base, node);
            assert_eq!(s.dram_energy_per_access_j(), base.dram_energy_per_access_j);
        }
    }

    #[test]
    fn size_ratios_are_node_invariant() {
        let base = EnergyModel::default_model();
        for node in TechNode::ALL {
            let s = ScaledBackend::new(base, node);
            assert_eq!(
                s.dyn_ratio(CoreSize::L, CoreSize::S),
                base.dyn_ratio(CoreSize::L, CoreSize::S)
            );
        }
    }

    #[test]
    fn unknown_nodes_are_rejected() {
        assert!(TechNode::by_name("3nm").is_none());
        assert_eq!(TechNode::by_name("7nm").unwrap().name, "7nm");
    }
}
