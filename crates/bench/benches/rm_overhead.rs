//! §III-E measurement: cost of one full RM invocation (local optimization +
//! global curve reduction) versus core count and controller, plus the PR 7
//! warm-path gates: the persistent-forest incremental re-plan must beat the
//! from-scratch reduction by ≥2× at 8 cores (1.5× under short CI smoke
//! budgets) and must not allocate on the steady-state path.
//!
//! Run with `cargo bench -p triad-bench --bench rm_overhead`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use triad_arch::{DvfsGrid, Setting, SystemConfig};
use triad_rm::{
    local_optimize, plan_system, DecisionMemo, IntervalModel, LocalPlan, PlannerState, RmKind,
};
use triad_util::bench::{bench, budget_from_env, speedup_gate};

/// Recorded on the reference dev box (2026-08-07, release build): one
/// incremental 8-core RM3 re-plan (single leaf update, O(log n) path
/// re-reduction, budget-entry-only root) costs ~3.6 µs; the from-scratch
/// clone-and-rebuild path this PR replaced cost ~21 µs (a ~5.9× measured
/// speedup). Only a >50× regression fails — the hard perf contract is the
/// in-process speedup gate below.
const RECORDED_INCREMENTAL_NS_PER_REPLAN: f64 = 3_600.0;

/// Global allocator that counts every allocation call, so the zero-alloc
/// claim on the steady-state re-plan path is checked, not asserted in
/// prose. Counting is monotone and `Relaxed`: the bench is single-threaded
/// and only ever diffs the counter across a quiescent window.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A cheap synthetic model so the bench measures the optimizer itself.
/// `mem_ns_per_way` shapes the memory term, so two instances produce
/// genuinely different energy curves (the alternating leaf updates below
/// must change plan content, not just touch it).
struct Synth {
    grid: DvfsGrid,
    mem_s_per_way: f64,
}

impl IntervalModel for Synth {
    fn predict(&self, s: Setting) -> (f64, f64) {
        let f = self.grid.point(s.vf).freq_hz;
        let v = self.grid.point(s.vf).volt;
        let t = 1.2e-9 * 2.0e9 / f
            + (17.0 - s.ways as f64) * self.mem_s_per_way
            + 4.0e-10 / s.core.dispatch_width() as f64;
        (t, (2.8 * v * v * (f / 2.0e9) + 0.6) * t)
    }
}

fn main() {
    let budget = budget_from_env(Duration::from_millis(300));

    println!("rm_invocation: one full local+global RM pass");
    for n_cores in [2usize, 4, 8] {
        let sys = SystemConfig::table1(n_cores);
        let model = Synth { grid: sys.dvfs.clone(), mem_s_per_way: 2.0e-11 };
        let b = sys.baseline_setting();
        for rm in [RmKind::Rm1, RmKind::Rm2, RmKind::Rm3] {
            bench(&format!("rm_invocation/{}/{n_cores}cores", rm.label()), None, budget, || {
                let plans: Vec<_> = (0..n_cores)
                    .map(|_| local_optimize(&model, rm, b, &sys.dvfs, sys.way_range(), 1.0))
                    .collect();
                black_box(plan_system(&plans, sys.total_ways(), b));
            });
        }
    }

    // ---- PR 7 gate: from-scratch vs incremental re-plan at 8 cores ----
    // The scenario every warm-path RM event pays: one core's local plan
    // changed, the other seven are untouched. From-scratch is what the
    // engine did before this PR (clone every cached plan, rebuild all 7
    // pair-nodes); incremental updates one leaf in place and re-reduces
    // only its 3 ancestors, allocation-free.
    println!("\nrm_replan: single-leaf update, 8 cores, RM3");
    let n_cores = 8usize;
    let sys = SystemConfig::table1(n_cores);
    let b = sys.baseline_setting();
    let rm = RmKind::Rm3;
    let model_a = Synth { grid: sys.dvfs.clone(), mem_s_per_way: 2.0e-11 };
    let model_b = Synth { grid: sys.dvfs.clone(), mem_s_per_way: 6.0e-11 };
    let plans: Vec<LocalPlan> = (0..n_cores)
        .map(|_| local_optimize(&model_a, rm, b, &sys.dvfs, sys.way_range(), 1.0))
        .collect();
    let plan_a = plans[3].clone();
    let plan_b = local_optimize(&model_b, rm, b, &sys.dvfs, sys.way_range(), 1.0);
    assert!(
        plan_a.energy.iter().zip(&plan_b.energy).any(|(x, y)| x.to_bits() != y.to_bits()),
        "the two synthetic models must produce distinct curves or the gate is vacuous"
    );

    let mut base = plans.clone();
    let mut toggle = false;
    let scratch_m = bench("rm_replan/from_scratch/8cores", None, budget, || {
        toggle = !toggle;
        base[3] = if toggle { plan_b.clone() } else { plan_a.clone() };
        let cloned: Vec<LocalPlan> = base.clone();
        black_box(plan_system(&cloned, sys.total_ways(), b).predicted_energy);
    });

    let mut state = PlannerState::new(n_cores, sys.way_range(), sys.total_ways(), b);
    for (j, p) in plans.iter().enumerate() {
        state.set_leaf(j, p);
    }
    state.replan();
    let mut toggle = false;
    let inc_m = bench("rm_replan/incremental/8cores", None, budget, || {
        toggle = !toggle;
        state.set_leaf(3, if toggle { &plan_b } else { &plan_a });
        black_box(state.replan().predicted_energy);
    });

    // Decisions must agree bit-for-bit before any perf claim counts.
    state.set_leaf(3, &plan_a);
    let inc_view = state.replan();
    base[3] = plan_a.clone();
    let scratch_dec = plan_system(&base, sys.total_ways(), b);
    assert_eq!(inc_view.settings, &scratch_dec.settings[..]);
    assert_eq!(inc_view.predicted_energy.to_bits(), scratch_dec.predicted_energy.to_bits());
    assert_eq!(inc_view.ops, scratch_dec.ops);

    let speedup = scratch_m.secs_per_iter / inc_m.secs_per_iter;
    let gate = speedup_gate(budget);
    println!("rm_replan/speedup                        {speedup:>11.2}x  (gate {gate:.1}x)");
    assert!(
        speedup >= gate,
        "incremental re-plan must beat from-scratch by ≥{gate:.1}x at 8 cores, got {speedup:.2}x"
    );
    let inc_ns = inc_m.secs_per_iter * 1e9;
    assert!(
        inc_ns < RECORDED_INCREMENTAL_NS_PER_REPLAN * 50.0,
        "catastrophic re-plan regression: {inc_ns:.0} ns/replan vs recorded \
         {RECORDED_INCREMENTAL_NS_PER_REPLAN:.0}"
    );

    // ---- PR 7 gate: the steady-state re-plan path allocates nothing ----
    // Outside `bench()` (which prints and appends JSON): alternate the leaf
    // between two warmed plans, re-plan, and probe the decision memo with a
    // borrowed key — the whole warm path the engine runs per RM event.
    let mut memo: DecisionMemo<Vec<u64>> = DecisionMemo::new();
    let key_a: Vec<u64> = vec![0, 3];
    let key_b: Vec<u64> = vec![1, 3];
    state.set_leaf(3, &plan_a);
    memo.insert(key_a.clone(), state.replan());
    state.set_leaf(3, &plan_b);
    memo.insert(key_b.clone(), state.replan());
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1_000u64 {
        let (plan, key) = if i % 2 == 0 { (&plan_a, &key_a) } else { (&plan_b, &key_b) };
        state.set_leaf(3, plan);
        black_box(state.replan().predicted_energy);
        let hit = memo.get(key.as_slice()).expect("warmed joint state must hit the memo");
        black_box(hit.ops);
    }
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocs, 0,
        "steady-state re-plan must be allocation-free: {allocs} allocations in 1000 re-plans"
    );
    println!("rm_replan/allocations                              0  (1000 steady-state re-plans)");

    // ---- PR 9 gate: disabled telemetry costs ≤1% of a re-plan ----
    // Must run AFTER the zero-alloc gate: enabling telemetry allocates its
    // registry and thread shard. The rm crate itself is telemetry-free by
    // design (the dirty-path length is a plain `PlannerState` field the
    // simulator observes), so the re-plan path executes zero record
    // operations — this gate verifies that stays true, and prices what the
    // disabled call sites would cost if any crept in.
    static PROBE: triad_telemetry::Counter = triad_telemetry::Counter::new("rm_overhead.probe");
    triad_telemetry::enable(triad_telemetry::METRICS);
    triad_telemetry::reset();
    state.set_leaf(3, &plan_b);
    black_box(state.replan().predicted_energy);
    let ops = triad_telemetry::snapshot().record_ops;
    triad_telemetry::disable_all();
    triad_telemetry::reset();
    let probe_iters = 20_000_000u64;
    let t0 = std::time::Instant::now();
    for _ in 0..probe_iters {
        PROBE.add(black_box(1));
    }
    let disabled_ns = t0.elapsed().as_secs_f64() / probe_iters as f64 * 1e9;
    let overhead = ops as f64 * disabled_ns * 1e-9;
    let frac = overhead / inc_m.secs_per_iter;
    println!(
        "rm_replan/telemetry_disabled_overhead    {ops} record ops x {disabled_ns:.2} ns \
         = {:.6}% of a re-plan (gate 1%)",
        frac * 100.0
    );
    assert!(
        frac <= 0.01,
        "disabled telemetry must cost ≤1% of an incremental re-plan: {ops} record ops x \
         {disabled_ns:.2} ns = {:.4}% of {:.2} us",
        frac * 100.0,
        inc_m.secs_per_iter * 1e6
    );

    // ---- PR 10 gate: disarmed failpoints cost ≤1% of a re-plan ----
    // The rm crate carries no failpoint sites; the per-row crash seams
    // (campaign.row plus the two journal sites) sit above it, so a re-plan
    // crosses none. Price the disarmed `fire()` cost — one relaxed atomic
    // load and a branch — and bound what 3 crossings per re-plan would
    // cost if the seams ever moved down into this path.
    static PROBE_FP: triad_util::failpoint::FailPoint =
        triad_util::failpoint::FailPoint::new("rm_overhead.probe");
    triad_util::failpoint::clear_all();
    let t0 = std::time::Instant::now();
    for _ in 0..probe_iters {
        black_box(PROBE_FP.fire());
    }
    let disarmed_ns = t0.elapsed().as_secs_f64() / probe_iters as f64 * 1e9;
    let fp_frac = 3.0 * disarmed_ns * 1e-9 / inc_m.secs_per_iter;
    println!(
        "rm_replan/failpoint_disarmed_overhead    3 crossings x {disarmed_ns:.2} ns \
         = {:.6}% of a re-plan (gate 1%)",
        fp_frac * 100.0
    );
    assert!(
        fp_frac <= 0.01,
        "disarmed failpoints must cost ≤1% of an incremental re-plan: 3 crossings x \
         {disarmed_ns:.2} ns = {:.4}% of {:.2} us",
        fp_frac * 100.0,
        inc_m.secs_per_iter * 1e6
    );
}
