//! System-level planning: local plans → global partition → new settings.
//!
//! The planner is energy-backend agnostic: joules enter through the
//! [`LocalPlan`] energy curves (produced by an [`crate::IntervalModel`]
//! holding a `&dyn triad_energy::EnergyBackend`), and this layer only
//! minimizes their sum — so swapping the backend re-shapes the curves
//! without touching any code below this point.

use crate::global::{optimize_partition, EnergyCurve};
use crate::local::LocalPlan;
use triad_arch::Setting;

/// The RM's decision for the whole system after one invocation.
#[derive(Debug, Clone)]
pub struct RmDecision {
    /// New setting per core.
    pub settings: Vec<Setting>,
    /// Predicted system energy per instruction (sum over cores).
    pub predicted_energy: f64,
    /// Model evaluations + reduction iterations (§III-E overhead proxy).
    pub ops: u64,
}

/// Combine per-core local plans into the optimal system setting.
///
/// Falls back to `baseline` on every core when the global problem is
/// infeasible — which cannot happen when each local plan kept its baseline
/// allocation feasible, but is handled defensively.
pub fn plan_system(plans: &[LocalPlan], total_ways: usize, baseline: Setting) -> RmDecision {
    let curves: Vec<EnergyCurve> =
        plans.iter().map(|p| EnergyCurve { min_w: p.min_w, energy: p.energy.clone() }).collect();
    let local_ops: u64 = plans.iter().map(|p| p.ops).sum();
    match optimize_partition(&curves, total_ways) {
        Some((ways, energy, global_ops)) => {
            let settings: Vec<Setting> = plans
                .iter()
                .zip(&ways)
                .map(|(p, &w)| p.setting_at(w).unwrap_or(baseline))
                .collect();
            RmDecision { settings, predicted_energy: energy, ops: local_ops + global_ops }
        }
        None => RmDecision {
            settings: vec![baseline; plans.len()],
            predicted_energy: f64::INFINITY,
            ops: local_ops,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::{local_optimize, IntervalModel, RmKind};
    use triad_arch::{CoreSize, DvfsGrid, SystemConfig};

    /// Core 0 is cache-hungry; core 1 is cache-flat and memory-light.
    struct Pair {
        grid: DvfsGrid,
        hungry: bool,
    }

    impl IntervalModel for Pair {
        fn predict(&self, s: Setting) -> (f64, f64) {
            let f = self.grid.point(s.vf).freq_hz;
            let v = self.grid.point(s.vf).volt;
            let mem = if self.hungry {
                // Sharp knee at 12 ways.
                if s.ways >= 12 {
                    0.05e-9
                } else {
                    2.0e-9
                }
            } else {
                0.05e-9
            };
            let t = 2.0 / (f / 1e9) * 1e-9 / s.core.dispatch_width() as f64 * 4.0 + mem;
            let p = [1.1, 2.2, 4.3][s.core.index()] * v * v * (f / 2.0e9)
                + [0.3, 0.6, 1.25][s.core.index()] * v;
            (t, p * t)
        }
    }

    #[test]
    fn planner_shifts_ways_to_the_hungry_core() {
        let sys = SystemConfig::table1(2);
        let b = sys.baseline_setting();
        let grid = sys.dvfs.clone();
        let hungry = Pair { grid: grid.clone(), hungry: true };
        let flat = Pair { grid: grid.clone(), hungry: false };
        let p0 = local_optimize(&hungry, RmKind::Rm2, b, &grid, sys.way_range(), 1.0);
        let p1 = local_optimize(&flat, RmKind::Rm2, b, &grid, sys.way_range(), 1.0);
        let d = plan_system(&[p0, p1], sys.total_ways(), b);
        assert_eq!(d.settings.len(), 2);
        assert_eq!(d.settings[0].ways + d.settings[1].ways, 16);
        assert!(d.settings[0].ways >= 12, "hungry core should receive the knee: {:?}", d.settings);
        assert!(d.predicted_energy.is_finite());
    }

    #[test]
    fn infeasible_plans_fall_back_to_baseline() {
        let sys = SystemConfig::table1(2);
        let b = sys.baseline_setting();
        let plans: Vec<_> = (0..2)
            .map(|_| crate::local::LocalPlan {
                min_w: 2,
                energy: vec![f64::INFINITY; 13],
                setting: vec![None; 13],
                ops: 1,
            })
            .collect();
        let d = plan_system(&plans, sys.total_ways(), b);
        assert_eq!(d.settings, vec![b, b]);
        assert!(d.predicted_energy.is_infinite());
    }

    #[test]
    fn ops_accumulate_local_and_global() {
        let sys = SystemConfig::table1(4);
        let b = sys.baseline_setting();
        let grid = sys.dvfs.clone();
        let flat = Pair { grid: grid.clone(), hungry: false };
        let plans: Vec<_> = (0..4)
            .map(|_| local_optimize(&flat, RmKind::Rm3, b, &grid, sys.way_range(), 1.0))
            .collect();
        let local: u64 = plans.iter().map(|p| p.ops).sum();
        let d = plan_system(&plans, sys.total_ways(), b);
        assert!(d.ops > local, "global reduction must add iterations");
        assert_eq!(d.settings.iter().map(|s| s.ways).sum::<usize>(), 32);
        let _ = CoreSize::ALL;
    }
}
