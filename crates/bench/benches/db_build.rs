//! End-to-end phase-database build cost — the grid sweep `build_phase`
//! pays per phase, tracked separately from the single-interval
//! `timing_model` unit so the db-build trajectory has its own baseline.
//!
//! Measurements per phase archetype:
//!
//! * `build_phase` — the real thing: streaming generate-and-classify plus
//!   the single-decode 30-lane lockstep grid (3 trace passes per phase);
//! * `two_pass_build` — the PR 5 pipeline shape: materialize the trace,
//!   classify it in a second pass, sweep it again for the load-only miss
//!   histogram, then run the grid as 6 lockstep passes (a monitored
//!   lo-frequency sweep plus an unmonitored hi-frequency sweep per core);
//! * `legacy_grid` — the PR 4 formulation of the simulation part: one
//!   independent engine call per (core, frequency, allocation) grid point;
//! * `batched_grid` — that grid as the PR 5 6-pass lockstep shape;
//! * `fused_grid` — the same grid as 3 mixed-frequency 30-lane passes.
//!
//! Both asserted speedups are machine-relative (numerator and denominator
//! measured in this process, so they hold on slow CI runners): the
//! legacy/batched lockstep ratio, and the two-pass-vs-fused pipeline
//! ratio, which is the PR 6 acceptance gate. The absolute constants only
//! guard against catastrophic regressions. Run with
//! `cargo bench -p triad-bench --bench db_build`; set
//! `TRIAD_BENCH_BUDGET_MS` to shrink the window (CI smoke).

use std::hint::black_box;
use std::time::Duration;
use triad_arch::{CacheGeometry, CoreSize};
use triad_cache::{classify_warm, MlpMonitor};
use triad_phasedb::{build_phase, DbConfig, NC, NW, W_MAX, W_MIN};
use triad_trace::InstKind;
use triad_uarch::{LaneSpec, TimingConfig, TimingEngine};
use triad_util::bench::{bench, budget_from_env, speedup_gate};

/// Recorded on the reference dev box (2026-08-07, release build) with the
/// fused pipeline: `build_phase` end-to-end cost per grid-point
/// instruction for the fast (32K-instruction-detail) configuration. The
/// PR 4 code paid ~44 ns here, the PR 5 code ~18 ns (0.482 s / 0.23 s cold
/// for the 3-app fast subset in `db_store`, now ~0.135 s). Only a >50×
/// regression fails.
const BUILD_BASELINE_NS_PER_GRID_INST: f64 = 10.0;

/// The fused pipeline must beat the PR 5 two-pass pipeline by this factor
/// on the **aggregate** of the three phase archetypes (in-process
/// comparison, summed build times). The gate is aggregate because the win
/// is workload-shaped: way-equivalent lanes collapse to one simulated
/// representative, which cuts the streaming archetype (all allocations
/// miss — 30 lanes, 2 survivors) by an order of magnitude but leaves the
/// memory-bound archetype (every stack distance occurs, nothing merges)
/// with only the shared-decode and front-end savings (~1.1×) — exactly the
/// mix the cold `db_store` path pays. 1.5 leaves headroom for noisy
/// runners; the reference box measures ~2×.
const FUSED_GATE: f64 = 1.5;

/// The closed-form DRAM fast path (SoA lane block + packed class cells)
/// must beat the scalar per-lane `DramQueue` walk by this factor on the
/// memory-bound archetype (`mcf`), where every detailed instruction
/// window is dominated by DRAM-classified loads and nothing dedups away.
/// In-process comparison: the same engine runs the same fused 30-lane
/// grid with `disable_dram_fast_path` flipped, so the ratio is
/// machine-relative and holds on slow CI runners.
const DRAM_FAST_PATH_GATE: f64 = 1.2;

fn main() {
    let cfg = DbConfig::fast();
    let geom = CacheGeometry::table1_scaled(4, cfg.scale);
    let budget = budget_from_env(Duration::from_secs(2));
    let grid_points = (2 * NC * NW) as f64; // 2 fit frequencies x 3 cores x 15 ways
    let grid_insts = grid_points * cfg.detail as f64;
    let lanes: Vec<LaneSpec> = (W_MIN..=W_MAX)
        .flat_map(|w| {
            [
                LaneSpec { ways: w, freq_hz: cfg.fit_lo_hz, monitor: true },
                LaneSpec::new(w, cfg.fit_hi_hz),
            ]
        })
        .collect();

    let mut worst_build = 0.0f64;
    let mut worst_grid_ratio = f64::INFINITY;
    let mut mcf_dram_ratio = 0.0f64;
    let mut mcf_spec = None;
    let mut mcf_build_secs = 0.0f64;
    let mut fused_total = 0.0f64;
    let mut two_pass_total = 0.0f64;
    for name in ["mcf", "libquantum", "povray"] {
        let app = triad_trace::suite().into_iter().find(|a| a.name == name).unwrap();
        let spec = app.phases[0].clone();

        // (1) The real build_phase, end to end.
        let m = bench(&format!("db_build/build_phase_{name}"), None, budget, || {
            black_box(build_phase(&spec, &cfg));
        });
        let build_ns = m.secs_per_iter * 1e9 / grid_insts;
        println!(
            "db_build/build_phase_{name:<18} {:>8.2} ms/phase  {build_ns:>6.1} ns/(grid-point inst)",
            m.secs_per_iter * 1e3
        );
        worst_build = worst_build.max(build_ns);

        // (2) The PR 5 pipeline shape, end to end: materialized trace,
        // second classification pass, third sweep for the load-only miss
        // histogram, 6-pass lockstep grid.
        let scaled = spec.scaled(cfg.scale as u64);
        let mut engine = TimingEngine::new();
        // The PR 5 engine had no way-equivalence lane deduplication and
        // walked a scalar per-lane `DramQueue`; turn both off so the
        // comparator measures that engine, not today's.
        engine.disable_lane_dedup(true);
        engine.disable_dram_fast_path(true);
        let two_pass = bench(&format!("db_build/two_pass_build_{name}"), None, budget, || {
            let trace = scaled.generate(cfg.warmup + cfg.detail, cfg.seed);
            let ct = classify_warm(&trace, &geom, cfg.warmup);
            let detailed = &trace.insts[cfg.warmup..];
            let mut load_hist = vec![0u64; geom.max_ways_per_core + 1];
            for (i, inst) in detailed.iter().enumerate() {
                if inst.kind == InstKind::Load && ct.is_llc_access(i) {
                    let code = ct.code(i);
                    let slot = if code <= 15 { code as usize } else { geom.max_ways_per_core };
                    load_hist[slot] += 1;
                }
            }
            black_box(load_hist);
            for c in CoreSize::ALL {
                let mut mons: Vec<MlpMonitor> =
                    (W_MIN..=W_MAX).map(|_| MlpMonitor::table1()).collect();
                let lo_cfg = TimingConfig::table1(c, cfg.fit_lo_hz, W_MIN);
                black_box(engine.simulate_ways_with_monitors(
                    detailed,
                    &ct,
                    &lo_cfg,
                    W_MIN..=W_MAX,
                    &mut mons,
                ));
                black_box(engine.simulate_ways(detailed, &ct, c, cfg.fit_hi_hz, W_MIN..=W_MAX));
            }
        });
        let fused_ratio = two_pass.secs_per_iter / m.secs_per_iter;
        println!("db_build/pipeline_speedup_{name:<13} {fused_ratio:>8.2}x fused over two-pass");
        fused_total += m.secs_per_iter;
        two_pass_total += two_pass.secs_per_iter;

        // (3)–(5): the simulation grid alone — legacy per-point calls,
        // the 6-pass lockstep shape, and the fused 30-lane shape — over
        // the identical classified trace.
        let trace = scaled.generate(cfg.warmup + cfg.detail, cfg.seed);
        let ct = classify_warm(&trace, &geom, cfg.warmup);
        let detailed = &trace.insts[cfg.warmup..];

        let legacy = bench(&format!("db_build/legacy_grid_{name}"), None, budget, || {
            for c in CoreSize::ALL {
                for w in W_MIN..=W_MAX {
                    let mut mon = MlpMonitor::table1();
                    black_box(engine.simulate_with_monitor(
                        detailed,
                        &ct,
                        &TimingConfig::table1(c, cfg.fit_lo_hz, w),
                        &mut mon,
                    ));
                    black_box(engine.simulate(
                        detailed,
                        &ct,
                        &TimingConfig::table1(c, cfg.fit_hi_hz, w),
                    ));
                }
            }
        });
        let batched = bench(&format!("db_build/batched_grid_{name}"), None, budget, || {
            for c in CoreSize::ALL {
                let mut mons: Vec<MlpMonitor> =
                    (W_MIN..=W_MAX).map(|_| MlpMonitor::table1()).collect();
                let lo_cfg = TimingConfig::table1(c, cfg.fit_lo_hz, W_MIN);
                black_box(engine.simulate_ways_with_monitors(
                    detailed,
                    &ct,
                    &lo_cfg,
                    W_MIN..=W_MAX,
                    &mut mons,
                ));
                black_box(engine.simulate_ways(detailed, &ct, c, cfg.fit_hi_hz, W_MIN..=W_MAX));
            }
        });
        engine.disable_lane_dedup(false);
        engine.disable_dram_fast_path(false);
        // The fused-vs-scalar-DRAM comparison gates a ~1.3-1.6x effect, so
        // its two windows get a floor: at the 250 ms smoke budget a ~23 ms
        // iteration yields only ~10 samples and background-load spikes on a
        // shared runner can push the measured ratio across the 1.2x gate.
        // ~750 ms per side stabilizes it without loosening the gate.
        let ab_budget = budget.max(Duration::from_millis(750));
        let fused = bench(&format!("db_build/fused_grid_{name}"), None, ab_budget, || {
            for c in CoreSize::ALL {
                let mut mons: Vec<MlpMonitor> =
                    (W_MIN..=W_MAX).map(|_| MlpMonitor::table1()).collect();
                let lo_cfg = TimingConfig::table1(c, cfg.fit_lo_hz, W_MIN);
                black_box(engine.simulate_lanes(detailed, &ct, &lo_cfg, &lanes, &mut mons));
            }
        });

        // (6) The identical fused 30-lane grid with only the closed-form
        // DRAM fast path disabled — lane dedup stays on, so the ratio
        // isolates the PR 8 inner-loop change (SoA lane block + packed
        // class cells vs the scalar `DramQueue` walk and class ring).
        engine.disable_dram_fast_path(true);
        let scalar_dram =
            bench(&format!("db_build/scalar_dram_grid_{name}"), None, ab_budget, || {
                for c in CoreSize::ALL {
                    let mut mons: Vec<MlpMonitor> =
                        (W_MIN..=W_MAX).map(|_| MlpMonitor::table1()).collect();
                    let lo_cfg = TimingConfig::table1(c, cfg.fit_lo_hz, W_MIN);
                    black_box(engine.simulate_lanes(detailed, &ct, &lo_cfg, &lanes, &mut mons));
                }
            });
        engine.disable_dram_fast_path(false);
        let dram_ratio = scalar_dram.secs_per_iter / fused.secs_per_iter;
        let ratio = legacy.secs_per_iter / batched.secs_per_iter;
        let grid_fused = batched.secs_per_iter / fused.secs_per_iter;
        println!(
            "db_build/grid_speedup_{name:<17} {ratio:>8.2}x lockstep over legacy, \
             {grid_fused:>5.2}x fused over 6-pass, {dram_ratio:>5.2}x fast DRAM over scalar"
        );
        worst_grid_ratio = worst_grid_ratio.min(ratio);
        if name == "mcf" {
            mcf_dram_ratio = dram_ratio;
            mcf_spec = Some(spec.clone());
            mcf_build_secs = m.secs_per_iter;
        }
    }
    println!(
        "db_build/baseline                        {BUILD_BASELINE_NS_PER_GRID_INST:>8.1} \
         ns/(grid-point inst) (recorded 2026-08-07; PR 5: ~18, PR 4: ~44)"
    );

    let gate = speedup_gate(budget);
    assert!(
        worst_grid_ratio >= gate,
        "the lockstep grid must be >={gate}x faster than per-grid-point calls \
         (got {worst_grid_ratio:.2}x)"
    );
    let agg_ratio = two_pass_total / fused_total;
    println!(
        "db_build/pipeline_speedup_aggregate      {agg_ratio:>8.2}x fused over two-pass \
         (3 archetypes)"
    );
    assert!(
        agg_ratio >= FUSED_GATE,
        "the fused single-decode build must be >={FUSED_GATE}x faster than the \
         two-pass pipeline on the archetype aggregate (got {agg_ratio:.2}x)"
    );
    assert!(
        mcf_dram_ratio >= DRAM_FAST_PATH_GATE,
        "the closed-form DRAM fast path must be >={DRAM_FAST_PATH_GATE}x faster than the \
         scalar DramQueue walk on the memory-bound archetype (got {mcf_dram_ratio:.2}x)"
    );
    assert!(
        worst_build < BUILD_BASELINE_NS_PER_GRID_INST * 50.0,
        "build_phase regressed catastrophically: {worst_build:.1} ns/(grid-point inst) \
         vs recorded {BUILD_BASELINE_NS_PER_GRID_INST:.1}"
    );

    // ---- PR 9 gate: disabled telemetry costs ≤1% of a build_phase ----
    // Count the record operations one instrumented build executes (enable
    // metrics, build once, read `record_ops`), price what those same call
    // sites cost when telemetry is disabled (one relaxed load + branch
    // each, measured in a tight loop), and bound the product against the
    // build time measured above. Both sides are in-process, so the gate
    // holds on slow runners.
    static PROBE: triad_telemetry::Counter = triad_telemetry::Counter::new("db_build.probe");
    triad_telemetry::enable(triad_telemetry::METRICS);
    triad_telemetry::reset();
    black_box(build_phase(&mcf_spec.expect("mcf measured above"), &cfg));
    let ops = triad_telemetry::snapshot().record_ops;
    triad_telemetry::disable_all();
    triad_telemetry::reset();
    let probe_iters = 20_000_000u64;
    let t0 = std::time::Instant::now();
    for _ in 0..probe_iters {
        PROBE.add(black_box(1));
    }
    let disabled_ns = t0.elapsed().as_secs_f64() / probe_iters as f64 * 1e9;
    let overhead = ops as f64 * disabled_ns * 1e-9;
    let frac = overhead / mcf_build_secs;
    println!(
        "db_build/telemetry_disabled_overhead     {ops} record ops x {disabled_ns:.2} ns \
         = {:.6}% of build_phase (gate 1%)",
        frac * 100.0
    );
    assert!(
        frac <= 0.01,
        "disabled telemetry must cost ≤1% of build_phase: {ops} record ops x \
         {disabled_ns:.2} ns disabled call = {:.4}% of {:.1} ms",
        frac * 100.0,
        mcf_build_secs * 1e3
    );

    // ---- PR 10 gate: disarmed failpoints cost ≤1% of a build_phase ----
    // With no site configured, `FailPoint::fire()` is one relaxed atomic
    // load and a branch. Price that disarmed cost in a tight loop and
    // bound 1000 crossings — two orders of magnitude more than the real
    // store seam (db_store.load / persist.write / persist.rename: ≤3 per
    // artifact resolve, amortized over every phase) — against one build.
    static PROBE_FP: triad_util::failpoint::FailPoint =
        triad_util::failpoint::FailPoint::new("db_build.probe");
    triad_util::failpoint::clear_all();
    let t0 = std::time::Instant::now();
    for _ in 0..probe_iters {
        black_box(PROBE_FP.fire());
    }
    let disarmed_ns = t0.elapsed().as_secs_f64() / probe_iters as f64 * 1e9;
    let fp_crossings = 1_000.0;
    let fp_frac = fp_crossings * disarmed_ns * 1e-9 / mcf_build_secs;
    println!(
        "db_build/failpoint_disarmed_overhead     {fp_crossings:.0} crossings x \
         {disarmed_ns:.2} ns = {:.6}% of build_phase (gate 1%)",
        fp_frac * 100.0
    );
    assert!(
        fp_frac <= 0.01,
        "disarmed failpoints must cost ≤1% of build_phase: {fp_crossings:.0} crossings x \
         {disarmed_ns:.2} ns = {:.4}% of {:.1} ms",
        fp_frac * 100.0,
        mcf_build_secs * 1e3
    );
}
