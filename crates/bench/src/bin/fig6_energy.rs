//! Fig. 6: energy savings of RM1/RM2/RM3 on six 4-core and six 8-core
//! workloads per scenario, with online models and overheads.
use triad_bench::{db, pct};
use triad_sim::experiments::{averages, fig6, scenario_means};

fn main() {
    let db = db();
    for n_cores in [4usize, 8] {
        println!("FIG. 6 ({n_cores}-core): energy savings per workload");
        println!("====================================================");
        println!("{:<11} {:<11} {:>7} {:>7} {:>7}  apps", "workload", "scenario", "RM1", "RM2", "RM3");
        let rows = fig6(db, n_cores, 2020);
        for r in &rows {
            println!(
                "{:<11} {:<11} {:>7} {:>7} {:>7}  {}",
                r.workload.name,
                r.workload.scenario.label(),
                pct(r.savings[0]),
                pct(r.savings[1]),
                pct(r.savings[2]),
                r.workload.apps.join(",")
            );
        }
        println!("\nper-scenario means:");
        for (s, m) in scenario_means(&rows) {
            println!("  {:<11} RM1={} RM2={} RM3={}", s.label(), pct(m[0]), pct(m[1]), pct(m[2]));
        }
        let (w, p) = averages(&rows);
        println!("weighted avg (47/22.1/22.1/8.8): RM1={} RM2={} RM3={}", pct(w[0]), pct(w[1]), pct(w[2]));
        println!("plain avg:                       RM1={} RM2={} RM3={}", pct(p[0]), pct(p[1]), pct(p[2]));
        let best = rows.iter().map(|r| r.savings[2]).fold(f64::NEG_INFINITY, f64::max);
        println!("max RM3 savings: {} (paper: up to 17.6% on 4-core)\n", pct(best));
    }
}
