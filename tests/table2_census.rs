//! The calibration contract: running the paper's §IV-C classification
//! criteria over the full default-quality database must reproduce
//! Table II exactly (5 CS-PS, 7 CS-PI, 7 CI-PS, 8 CI-PI, same members) —
//! and the steady-workload generator must honor the same census: §IV-C
//! half-pool semantics with replacement, and empirical scenario
//! frequencies converging on the Fig. 1 weights.
//!
//! `full_suite_reproduces_table2` is the most expensive integration test
//! (full 27-app database); the generator properties are pure and fast.

use triad::phasedb::{build_suite, characterize_app, DbConfig};
use triad::trace::Category;
use triad::workload::{scenario_of_pair, Scenario, WorkloadSpec};

#[test]
fn full_suite_reproduces_table2() {
    let db = build_suite(&DbConfig::default());
    let mut mismatches = Vec::new();
    for e in &db.apps {
        let c = characterize_app(e);
        if c.derived != c.expected {
            mismatches.push(format!(
                "{}: expected {}, derived {} (mpki {:?}, mlp {:?})",
                c.name, c.expected, c.derived, c.mpki, c.mlp
            ));
        }
    }
    assert!(mismatches.is_empty(), "Table II mismatches:\n{}", mismatches.join("\n"));
}

/// The apps and realized scenario of one census-sampled steady mix.
fn sampled_mix(n_cores: usize, seed: u64) -> (Vec<String>, Scenario) {
    let trace = WorkloadSpec::Steady { n_cores, scenario: None, seed }
        .materialize()
        .expect("steady mixes materialize");
    let apps: Vec<String> = trace
        .static_names()
        .expect("steady mixes are static")
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cats: Vec<Category> =
        apps.iter().map(|n| triad::trace::by_name(n).unwrap().category).collect();
    (apps, scenario_of_pair(cats[0], cats[n_cores / 2]))
}

#[test]
fn steady_mixes_follow_iv_c_semantics() {
    // Each half draws from exactly one category — and *with* replacement:
    // over many seeds some mix must repeat an application within a half
    // (without replacement that is impossible).
    let mut saw_duplicate_in_half = false;
    for seed in 0..400u64 {
        let (apps, _) = sampled_mix(8, seed);
        let cats: Vec<Category> =
            apps.iter().map(|n| triad::trace::by_name(n).unwrap().category).collect();
        assert!(cats[..4].iter().all(|&c| c == cats[0]), "first half single-category: {apps:?}");
        assert!(cats[4..].iter().all(|&c| c == cats[4]), "second half single-category: {apps:?}");
        saw_duplicate_in_half |=
            apps[..4].iter().any(|a| apps[..4].iter().filter(|b| *b == a).count() > 1);
    }
    assert!(
        saw_duplicate_in_half,
        "half-pools must sample with replacement (random.choice semantics)"
    );
}

#[test]
fn census_scenario_frequencies_converge_on_fig1_weights() {
    // 10k seeds of census-weighted sampling: the realized scenario
    // frequencies must converge on the paper's 47/22.1/22.1/8.8 weights
    // (each within ±1.5 percentage points; binomial σ at n=10k is ≈0.5pp).
    const N: u64 = 10_000;
    let mut counts = [0u64; 4];
    for seed in 0..N {
        let (_, s) = sampled_mix(4, seed);
        counts[Scenario::ALL.iter().position(|&x| x == s).unwrap()] += 1;
    }
    let expected = [47.0, 22.1, 22.1, 8.8];
    for (i, s) in Scenario::ALL.iter().enumerate() {
        let pct = counts[i] as f64 * 100.0 / N as f64;
        assert!(
            (pct - expected[i]).abs() < 1.5,
            "{s}: empirical {pct:.2}% vs census weight {:.1}%",
            expected[i]
        );
    }
}
