//! Randomized property tests for the resource-manager optimizers.
//!
//! The global optimizer is checked against a brute-force enumeration of
//! way allocations on small instances (2–4 cores, curves up to 8 ways
//! wide), including `INFINITY`-infeasible curve entries, at both the
//! `optimize_partition` and the `plan_system` level. The local-optimizer
//! properties mirror the former proptest suite with a deterministic
//! workspace PRNG, so failures reproduce bit-exactly.

use triad_arch::{CoreSize, DvfsGrid, Setting};
use triad_rm::{
    local_optimize, optimize_partition, plan_system, DecisionMemo, EnergyCurve, IntervalModel,
    LocalPlan, PlannerState, RmKind,
};
use triad_util::rand::rngs::StdRng;
use triad_util::rand::{RngExt, SeedableRng};

/// Exhaustive reference optimizer: minimum of `Σ E_j(w_j)` over every
/// feasible allocation with `Σ w_j = total`.
fn brute_force(curves: &[EnergyCurve], total: usize) -> Option<(Vec<usize>, f64)> {
    fn rec(
        curves: &[EnergyCurve],
        i: usize,
        left: usize,
        acc: f64,
        cur: &mut Vec<usize>,
        best: &mut Option<(Vec<usize>, f64)>,
    ) {
        if i == curves.len() {
            if left == 0 && acc.is_finite() && best.as_ref().map(|(_, e)| acc < *e).unwrap_or(true)
            {
                *best = Some((cur.clone(), acc));
            }
            return;
        }
        let c = &curves[i];
        for w in c.min_w..=c.max_w().min(left) {
            cur.push(w);
            rec(curves, i + 1, left - w, acc + c.at(w), cur, best);
            cur.pop();
        }
    }
    let mut best = None;
    rec(curves, 0, total, 0.0, &mut Vec::new(), &mut best);
    best
}

/// A random small instance: `n` curves starting at `min_w` with `len`
/// points each, a fraction of which are infeasible.
fn random_curves(
    rng: &mut StdRng,
    n: usize,
    min_w: usize,
    len: usize,
    p_inf: f64,
) -> Vec<EnergyCurve> {
    (0..n)
        .map(|_| EnergyCurve {
            min_w,
            energy: (0..len)
                .map(|_| {
                    if rng.random_bool(p_inf) {
                        f64::INFINITY
                    } else {
                        0.01 + rng.random::<f64>() * 10.0
                    }
                })
                .collect(),
        })
        .collect()
}

#[test]
fn global_optimizer_matches_brute_force_on_small_instances() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for trial in 0..300 {
        let n = 2 + trial % 3; // 2..=4 cores
        let len = 3 + trial % 6; // 3..=8 way choices per curve
        let min_w = 1 + trial % 2;
        let p_inf = [0.0, 0.1, 0.35][trial % 3];
        let curves = random_curves(&mut rng, n, min_w, len, p_inf);
        // Totals from infeasibly small through infeasibly large.
        let lo = n * min_w;
        let hi = n * (min_w + len - 1);
        for total in (lo.saturating_sub(1))..=(hi + 1) {
            let fast = optimize_partition(&curves, total);
            let slow = brute_force(&curves, total);
            match (&fast, &slow) {
                (Some((ws, e, _)), Some((_, eb))) => {
                    assert!((e - eb).abs() < 1e-9, "trial {trial} total {total}: {e} vs {eb}");
                    assert_eq!(ws.iter().sum::<usize>(), total);
                    let realized: f64 = ws.iter().enumerate().map(|(i, &w)| curves[i].at(w)).sum();
                    assert!(
                        (realized - e).abs() < 1e-9,
                        "trial {trial}: assignment must realize the optimum"
                    );
                }
                (None, None) => {}
                _ => panic!("trial {trial} total {total}: fast {fast:?} vs slow {slow:?}"),
            }
        }
    }
}

#[test]
fn plan_system_matches_brute_force_including_infeasible_entries() {
    let grid = DvfsGrid::table1();
    let baseline = Setting::new(CoreSize::M, grid.baseline, 2);
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for trial in 0..200 {
        let n = 2 + trial % 3;
        let len = 4 + trial % 5; // 4..=8 way choices
        let min_w = 1;
        let curves = random_curves(&mut rng, n, min_w, len, 0.2);
        let plans: Vec<LocalPlan> = curves
            .iter()
            .map(|c| LocalPlan {
                min_w: c.min_w,
                energy: c.energy.clone(),
                setting: c
                    .energy
                    .iter()
                    .enumerate()
                    .map(|(i, e)| e.is_finite().then(|| Setting::new(CoreSize::M, 0, c.min_w + i)))
                    .collect(),
                ops: 1,
            })
            .collect();
        let total = n * (min_w + len - 1) / 2 + n; // somewhere mid-domain
        let decision = plan_system(&plans, total, baseline);
        match brute_force(&curves, total) {
            Some((_, eb)) => {
                assert!(
                    (decision.predicted_energy - eb).abs() < 1e-9,
                    "trial {trial}: {} vs brute-force {eb}",
                    decision.predicted_energy
                );
                assert_eq!(
                    decision.settings.iter().map(|s| s.ways).sum::<usize>(),
                    total,
                    "trial {trial}: Σw must hit the associativity budget"
                );
            }
            None => {
                // Infeasible: the planner falls back to the baseline.
                assert!(decision.predicted_energy.is_infinite(), "trial {trial}");
                assert!(decision.settings.iter().all(|s| *s == baseline), "trial {trial}");
            }
        }
    }
}

/// A random [`LocalPlan`] over `min_w..min_w+len`: the curve from
/// [`random_curves`], a distinct setting per feasible point and a random
/// ops count (so ops-sum mismatches cannot hide).
fn random_plan(rng: &mut StdRng, min_w: usize, len: usize, p_inf: f64) -> LocalPlan {
    let c = random_curves(rng, 1, min_w, len, p_inf).remove(0);
    let setting = c
        .energy
        .iter()
        .enumerate()
        .map(|(i, e)| e.is_finite().then(|| Setting::new(CoreSize::M, i % 3, min_w + i)))
        .collect();
    LocalPlan { min_w, energy: c.energy, setting, ops: rng.random_range(0..50u64) }
}

/// The tentpole guarantee: a persistent planner fed an arbitrary event
/// sequence (leaf updates, pinned resets — the shapes arrivals, churn,
/// departures and interval completions produce) returns decisions
/// **bit-identical** to a from-scratch `plan_system` over the same plans:
/// same settings, same predicted-energy bits, same reported `ops` —
/// including the infeasible fallback, which counts only local ops.
#[test]
fn incremental_planner_matches_from_scratch_bit_for_bit() {
    let grid = DvfsGrid::table1();
    let mut rng = StdRng::seed_from_u64(0x1AC5);
    for &n in &[1usize, 2, 3, 4, 5, 8, 9] {
        let min_w = 1;
        let len = 6; // ways 1..=6 per core
        let way_range = min_w..=(min_w + len - 1);
        let baseline = Setting::new(CoreSize::M, grid.baseline, 2);
        let total = n * (2 * min_w + len - 1) / 2; // mid-domain
        let mut state = PlannerState::new(n, way_range.clone(), total, baseline);
        let mut mirror: Vec<LocalPlan> =
            (0..n).map(|_| LocalPlan::pinned(way_range.clone(), baseline)).collect();

        for step in 0..=60 {
            if step > 0 {
                // One event: some core's leaf changes.
                let j = rng.random_range(0..n as u64) as usize;
                if rng.random_bool(0.25) {
                    state.set_leaf_pinned(j);
                    mirror[j] = LocalPlan::pinned(way_range.clone(), baseline);
                } else {
                    let p_inf = [0.0, 0.2, 0.6][step % 3];
                    let plan = random_plan(&mut rng, min_w, len, p_inf);
                    state.set_leaf(j, &plan);
                    mirror[j] = plan;
                }
            }
            let scratch = plan_system(&mirror, total, baseline);
            let inc = state.replan();
            assert_eq!(inc.ops, scratch.ops, "n={n} step={step}: ops must match exactly");
            assert_eq!(
                inc.predicted_energy.to_bits(),
                scratch.predicted_energy.to_bits(),
                "n={n} step={step}: energy must be bit-identical"
            );
            assert_eq!(
                inc.settings,
                &scratch.settings[..],
                "n={n} step={step}: settings must match"
            );
            if n <= 4 {
                let curves: Vec<EnergyCurve> = mirror
                    .iter()
                    .map(|p| EnergyCurve { min_w: p.min_w, energy: p.energy.clone() })
                    .collect();
                match brute_force(&curves, total) {
                    Some((_, eb)) => assert!(
                        (inc.predicted_energy - eb).abs() < 1e-9,
                        "n={n} step={step}: {} vs brute-force {eb}",
                        inc.predicted_energy
                    ),
                    None => assert!(
                        inc.predicted_energy.is_infinite(),
                        "n={n} step={step}: brute force says infeasible"
                    ),
                }
            }
        }
    }
}

/// An out-of-domain ways budget must reproduce `plan_system`'s baseline
/// fallback (infinite energy, local-only ops) from the persistent planner
/// too.
#[test]
fn incremental_planner_matches_fallback_when_total_out_of_domain() {
    let grid = DvfsGrid::table1();
    let baseline = Setting::new(CoreSize::M, grid.baseline, 2);
    let mut rng = StdRng::seed_from_u64(0xFA11);
    let (n, min_w, len) = (4usize, 1usize, 6usize);
    let total = n * (min_w + len - 1) + 3; // larger than any allocation
    let mut state = PlannerState::new(n, min_w..=(min_w + len - 1), total, baseline);
    let mut mirror = Vec::new();
    for j in 0..n {
        let plan = random_plan(&mut rng, min_w, len, 0.1);
        state.set_leaf(j, &plan);
        mirror.push(plan);
    }
    let scratch = plan_system(&mirror, total, baseline);
    let inc = state.replan();
    assert!(inc.predicted_energy.is_infinite());
    assert_eq!(inc.ops, scratch.ops, "fallback counts only the local ops");
    assert_eq!(inc.settings, &scratch.settings[..]);
}

/// The decision memo must hand back exactly the view it was given.
#[test]
fn decision_memo_round_trips_bit_identical_views() {
    let grid = DvfsGrid::table1();
    let baseline = Setting::new(CoreSize::M, grid.baseline, 2);
    let mut rng = StdRng::seed_from_u64(0x3E30);
    let (n, min_w, len) = (5usize, 1usize, 6usize);
    let mut state = PlannerState::new(n, min_w..=(min_w + len - 1), n * 3, baseline);
    for j in 0..n {
        let plan = random_plan(&mut rng, min_w, len, 0.15);
        state.set_leaf(j, &plan);
    }
    let mut memo: DecisionMemo<Vec<u32>> = DecisionMemo::new();
    assert!(memo.is_empty());
    let key = vec![7u32, 8, 9];
    {
        let view = state.replan();
        memo.insert(key.clone(), view);
    }
    assert_eq!(memo.len(), 1);
    assert!(memo.get([1u32, 2, 3].as_slice()).is_none(), "unknown keys miss");
    let got = memo.get(key.as_slice()).expect("stored key hits");
    let live = state.view();
    assert_eq!(got.settings, live.settings);
    assert_eq!(got.predicted_energy.to_bits(), live.predicted_energy.to_bits());
    assert_eq!(got.ops, live.ops);
}

/// A randomized-but-lawful model for local-optimizer properties.
struct RandModel {
    grid: DvfsGrid,
    mem: Vec<f64>,
    compute_scale: f64,
}

impl IntervalModel for RandModel {
    fn predict(&self, s: Setting) -> (f64, f64) {
        let f = self.grid.point(s.vf).freq_hz;
        let v = self.grid.point(s.vf).volt;
        let t =
            self.compute_scale / f * 4.0 / s.core.dispatch_width() as f64 + self.mem[s.ways - 2];
        let p = [1.4, 2.8, 5.5][s.core.index()] * v * v * (f / 2.0e9) + 0.5 * v;
        (t, p * t)
    }
}

fn random_model(rng: &mut StdRng) -> RandModel {
    // Monotone non-increasing memory curve over ways.
    let mut mem: Vec<f64> = (0..15).map(|_| 1.0e-11 + rng.random::<f64>() * 4.9e-10).collect();
    mem.sort_by(|a, b| b.total_cmp(a));
    RandModel { grid: DvfsGrid::table1(), mem, compute_scale: 0.3 + rng.random::<f64>() * 2.7 }
}

#[test]
fn local_plans_respect_qos() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for trial in 0..40 {
        let model = random_model(&mut rng);
        let baseline = Setting::new(CoreSize::M, model.grid.baseline, 8);
        let (t_base, _) = model.predict(baseline);
        for kind in RmKind::ALL {
            let plan = local_optimize(&model, kind, baseline, &model.grid, 2..=16, 1.0);
            assert!(plan.energy_at(8).is_finite(), "trial {trial} {kind}");
            for w in 2..=16 {
                if let Some(s) = plan.setting_at(w) {
                    let (t, e) = model.predict(s);
                    assert!(t <= t_base * (1.0 + 1e-12), "trial {trial} {kind} w={w}");
                    assert!((e - plan.energy_at(w)).abs() < 1e-15);
                    assert_eq!(s.ways, w);
                }
            }
        }
    }
}

#[test]
fn controller_hierarchy_dominates() {
    let mut rng = StdRng::seed_from_u64(0xD0E);
    for trial in 0..40 {
        let model = random_model(&mut rng);
        let baseline = Setting::new(CoreSize::M, model.grid.baseline, 8);
        let p1 = local_optimize(&model, RmKind::Rm1, baseline, &model.grid, 2..=16, 1.0);
        let p2 = local_optimize(&model, RmKind::Rm2, baseline, &model.grid, 2..=16, 1.0);
        let p3 = local_optimize(&model, RmKind::Rm3, baseline, &model.grid, 2..=16, 1.0);
        let p3f = local_optimize(&model, RmKind::Rm3Full, baseline, &model.grid, 2..=16, 1.0);
        for w in 2..=16 {
            assert!(p2.energy_at(w) <= p1.energy_at(w) + 1e-18, "trial {trial} w={w}");
            assert!(p3.energy_at(w) <= p2.energy_at(w) + 1e-18, "trial {trial} w={w}");
            assert!(p3f.energy_at(w) <= p3.energy_at(w) + 1e-18, "trial {trial} w={w}");
        }
    }
}
