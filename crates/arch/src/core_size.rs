//! Adaptive core sizes and their micro-architectural parameters.
//!
//! The paper's adaptive core can be reconfigured to three *balanced* sizes by
//! deactivating sections of core components (issue ports, ROB banks,
//! reservation-station entries, LSQ entries, functional units). Table I:
//!
//! | size | issue | ROB | RS  | LSQ |
//! |------|-------|-----|-----|-----|
//! | L    | 8     | 256 | 128 | 64  |
//! | M    | 4     | 128 | 64  | 32  |
//! | S    | 2     | 64  | 16  | 10  |

use std::fmt;

/// One of the three supported core configurations.
///
/// Ordered from smallest to largest so that `CoreSize::S < CoreSize::L`
/// matches "fewer resources < more resources".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CoreSize {
    /// Small: 2-issue, 64-entry ROB.
    S,
    /// Medium: 4-issue, 128-entry ROB. This is the paper's baseline size.
    M,
    /// Large: 8-issue, 256-entry ROB.
    L,
}

impl CoreSize {
    /// All sizes in ascending resource order.
    pub const ALL: [CoreSize; 3] = [CoreSize::S, CoreSize::M, CoreSize::L];

    /// Number of distinct core sizes (3 in the paper).
    pub const COUNT: usize = 3;

    /// The paper's baseline core size (mid-range setting).
    pub const BASELINE: CoreSize = CoreSize::M;

    /// Dense index in `[0, COUNT)`: S → 0, M → 1, L → 2.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            CoreSize::S => 0,
            CoreSize::M => 1,
            CoreSize::L => 2,
        }
    }

    /// Inverse of [`CoreSize::index`]. Returns `None` for indices ≥ 3.
    #[inline]
    pub const fn from_index(idx: usize) -> Option<CoreSize> {
        match idx {
            0 => Some(CoreSize::S),
            1 => Some(CoreSize::M),
            2 => Some(CoreSize::L),
            _ => None,
        }
    }

    /// Micro-architectural parameters of this size (Table I).
    #[inline]
    pub const fn params(self) -> CoreParams {
        match self {
            CoreSize::S => CoreParams { issue_width: 2, rob: 64, rs: 16, lsq: 10 },
            CoreSize::M => CoreParams { issue_width: 4, rob: 128, rs: 64, lsq: 32 },
            CoreSize::L => CoreParams { issue_width: 8, rob: 256, rs: 128, lsq: 64 },
        }
    }

    /// Dispatch width `D(c)` used by the performance model (Eq. 1).
    #[inline]
    pub const fn dispatch_width(self) -> u32 {
        self.params().issue_width
    }

    /// Reorder-buffer size `ROB(c)` used by the leading-miss heuristic
    /// (Fig. 4) and the timing model.
    #[inline]
    pub const fn rob(self) -> u32 {
        self.params().rob
    }
}

impl fmt::Display for CoreSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreSize::S => write!(f, "S"),
            CoreSize::M => write!(f, "M"),
            CoreSize::L => write!(f, "L"),
        }
    }
}

/// Micro-architectural sizing of one core configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreParams {
    /// Instructions dispatched/issued/retired per cycle.
    pub issue_width: u32,
    /// Reorder-buffer entries.
    pub rob: u32,
    /// Reservation-station entries (scheduler window).
    pub rs: u32,
    /// Load/store-queue entries (bounds in-flight memory operations).
    pub lsq: u32,
}

/// Instruction-index window used by the ATD leading-miss extension:
/// four times the maximum ROB size (4 × 256 = 1024), requiring 10 bits.
pub const INSTRUCTION_INDEX_WINDOW: u32 = 4 * 256;

/// Bits needed to encode an instruction index (`log2(1024)`).
pub const INSTRUCTION_INDEX_BITS: u32 = 10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters() {
        assert_eq!(CoreSize::L.params(), CoreParams { issue_width: 8, rob: 256, rs: 128, lsq: 64 });
        assert_eq!(CoreSize::M.params(), CoreParams { issue_width: 4, rob: 128, rs: 64, lsq: 32 });
        assert_eq!(CoreSize::S.params(), CoreParams { issue_width: 2, rob: 64, rs: 16, lsq: 10 });
    }

    #[test]
    fn baseline_is_medium() {
        assert_eq!(CoreSize::BASELINE, CoreSize::M);
    }

    #[test]
    fn index_roundtrip() {
        for (i, &c) in CoreSize::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(CoreSize::from_index(i), Some(c));
        }
        assert_eq!(CoreSize::from_index(3), None);
    }

    #[test]
    fn ordering_matches_resources() {
        assert!(CoreSize::S < CoreSize::M);
        assert!(CoreSize::M < CoreSize::L);
        assert!(CoreSize::S.rob() < CoreSize::M.rob());
        assert!(CoreSize::M.rob() < CoreSize::L.rob());
        assert!(CoreSize::S.dispatch_width() < CoreSize::L.dispatch_width());
    }

    #[test]
    fn instruction_index_window_is_4x_max_rob() {
        assert_eq!(INSTRUCTION_INDEX_WINDOW, 4 * CoreSize::L.rob());
        assert_eq!(1u32 << INSTRUCTION_INDEX_BITS, INSTRUCTION_INDEX_WINDOW);
    }

    #[test]
    fn display_names() {
        assert_eq!(CoreSize::S.to_string(), "S");
        assert_eq!(CoreSize::M.to_string(), "M");
        assert_eq!(CoreSize::L.to_string(), "L");
    }
}
