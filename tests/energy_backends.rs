//! The energy-backend seam's workspace-level contract:
//!
//! 1. with the **default** (McPAT-parametric) backend, campaign rows are
//!    byte-identical to the pre-refactor output (golden captured before the
//!    `EnergyBackend` trait existed) apart from the added self-describing
//!    `"energy_backend"` metadata line;
//! 2. non-default backends run the same specs end-to-end and produce
//!    *different*, self-describing rows;
//! 3. the phase database is purely microarchitectural: its content-address
//!    (and therefore the persisted store artifact) is unchanged by the
//!    energy backend choice.

use triad::energy::{EnergyBackendConfig, EnergyModel, TableBackend};
use triad::phasedb::{build_apps, db_fingerprint, DbConfig, DbStore, PhaseDb};
use triad::rm::{ModelKind, RmKind};
use triad::sim::engine::SimModel;
use triad::sim::{Campaign, ExperimentSpec};
use triad_arch::DvfsGrid;

/// Byte-exact pre-refactor campaign report for [`golden_specs`] (captured
/// from the seed code before `EnergyModel` became a backend).
const GOLDEN: &str = include_str!("golden/campaign_default.json");

fn db() -> PhaseDb {
    let names = ["mcf", "povray"];
    let apps: Vec<_> =
        triad::trace::suite().into_iter().filter(|a| names.contains(&a.name)).collect();
    build_apps(&apps, &DbConfig::fast())
}

/// The exact spec list the golden was captured with.
fn golden_specs() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec::new("golden/idle", &["mcf", "povray"]).rm(None).target_intervals(6).seed(7),
        ExperimentSpec::new("golden/rm3-perfect", &["mcf", "povray"])
            .perfect()
            .target_intervals(6)
            .seed(7),
        ExperimentSpec::new("golden/rm3-model3", &["mcf", "povray"])
            .model(SimModel::Online(ModelKind::Model3))
            .rm(Some(RmKind::Rm3))
            .target_intervals(6)
            .seed(7),
    ]
}

/// Drop the post-refactor metadata lines (`"energy_backend"` from the
/// backend seam, `"workload_fingerprint"` from the workload subsystem) so
/// the rest of the report can be compared byte-for-byte against the
/// pre-refactor bytes.
fn strip_backend_lines(report: &str) -> String {
    report
        .lines()
        .filter(|l| {
            let l = l.trim_start();
            !l.starts_with("\"energy_backend\"") && !l.starts_with("\"workload_fingerprint\"")
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

#[test]
fn default_backend_reproduces_pre_refactor_rows_byte_identically() {
    let db = db();
    let report = Campaign::report(&Campaign::new(golden_specs()).run(&db)).to_string_pretty();
    // The new metadata is present on every row...
    assert_eq!(
        report.matches("\"energy_backend\": \"mcpat\"").count(),
        3,
        "every spec must self-describe its backend"
    );
    // ...and is the *only* difference from the pre-refactor bytes.
    assert_eq!(
        strip_backend_lines(&report),
        GOLDEN,
        "the default parametric backend must reproduce pre-refactor campaign rows byte-identically"
    );
}

#[test]
fn alternative_backends_run_end_to_end_and_change_the_rows() {
    let db = db();
    let table_path =
        std::env::temp_dir().join(format!("triad-backend-test-table-{}.json", std::process::id()));
    let table_path = table_path.to_str().unwrap().to_string();
    // A genuinely different "measurement": 20 % leakier than the model.
    let mut table = TableBackend::sampled_from(
        &EnergyModel::default_model(),
        DvfsGrid::table1().points(),
        table_path.clone(),
    );
    for pts in &mut table.points {
        for p in pts.iter_mut() {
            p.static_w *= 1.2;
        }
    }
    table.save(&table_path).unwrap();

    let with = |energy: EnergyBackendConfig| {
        let specs = golden_specs().into_iter().map(|s| s.energy_backend(energy.clone())).collect();
        Campaign::new(specs).run(&db)
    };
    let base = with(EnergyBackendConfig::Parametric);
    let scaled = with(EnergyBackendConfig::Scaled { node: "14nm".into() });
    let tabled = with(EnergyBackendConfig::Table { path: table_path.clone() });
    let _ = std::fs::remove_file(&table_path);

    for (rows, label) in [(&scaled, "scaled:14nm"), (&tabled, "table:")] {
        for (row, base_row) in rows.iter().zip(&base) {
            assert_ne!(
                row.result.total_energy_j, base_row.result.total_energy_j,
                "{label}: joules must differ from the parametric backend"
            );
            assert!(row.result.total_energy_j > 0.0);
            let json = row.to_json().to_string_pretty();
            assert!(
                json.contains(&format!("\"energy_backend\": \"{label}")),
                "{label}: rows must be self-describing, got:\n{json}"
            );
        }
    }
    // A 14 nm shrink cuts dynamic power harder than leakage: total joules
    // must drop relative to the 32 nm-calibrated base.
    assert!(scaled[0].result.total_energy_j < base[0].result.total_energy_j);
    // The leakier table raises them.
    assert!(tabled[0].result.total_energy_j > base[0].result.total_energy_j);
}

#[test]
fn phase_db_fingerprint_is_independent_of_the_energy_backend() {
    // The fingerprint is a pure function of (apps, DbConfig) — no energy
    // parameter exists in its input set...
    let apps: Vec<_> =
        triad::trace::suite().into_iter().filter(|a| ["mcf", "povray"].contains(&a.name)).collect();
    let cfg = DbConfig::fast();
    let digest = db_fingerprint(&apps, &cfg);

    // ...so campaigns under different backends must resolve to the same
    // persisted artifact: one store file serves every backend.
    let dir =
        std::env::temp_dir().join(format!("triad-backend-fingerprint-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DbStore::new(&dir);
    let mut paths = Vec::new();
    for energy in
        [EnergyBackendConfig::Parametric, EnergyBackendConfig::Scaled { node: "7nm".into() }]
    {
        let spec = ExperimentSpec::new("fp", &["mcf", "povray"])
            .perfect()
            .target_intervals(2)
            .energy_backend(energy);
        let campaign = Campaign::new(vec![spec]);
        let resolved = store.resolve(&campaign.required_apps(), &cfg);
        assert!(resolved.path.to_string_lossy().contains(&digest));
        paths.push(resolved.path.clone());
        let rows = campaign.run(&resolved.db);
        assert!(rows[0].result.total_energy_j > 0.0);
    }
    assert_eq!(paths[0], paths[1], "backend choice must not re-key the phase database");
    let artifacts = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(artifacts, 1, "exactly one store artifact must serve every backend");
    let _ = std::fs::remove_dir_all(&dir);
}
