//! Brute-force property tests of the [`EnergyBackend`] contract over every
//! in-tree backend: finite nonnegative power everywhere on the
//! `(c, vf, util)` grid, power (and therefore fixed-window energy)
//! monotone in the operating point at fixed utilization, monotone in
//! utilization at a fixed operating point, and consistent `dyn_ratio`
//! algebra. Backends are constructed the same way production code gets
//! them — through [`EnergyBackendConfig::build`] — so the configs' build
//! paths are covered too.

use triad_arch::{CoreSize, DvfsGrid, VfPoint};
use triad_energy::{EnergyBackend, EnergyBackendConfig, EnergyModel, TableBackend};

/// A measured-style table that is *not* a resample of the parametric
/// model: hand-wobbled powers, still monotone in frequency per size.
fn wobbly_table_json_path() -> String {
    let grid = DvfsGrid::table1();
    let mut t = TableBackend::sampled_from(&EnergyModel::default_model(), grid.points(), "wobbly");
    for (i, pts) in t.points.iter_mut().enumerate() {
        for (k, p) in pts.iter_mut().enumerate() {
            // Size- and point-dependent measurement "noise" that keeps the
            // per-size curves strictly increasing.
            let jitter = 1.0 + 0.03 * ((i + 1) as f64) * ((k % 3) as f64 - 1.0) * 0.2;
            p.dyn_w *= jitter;
            p.static_w *= 2.0 - jitter;
        }
        pts.sort_by(|a, b| a.freq_hz.total_cmp(&b.freq_hz));
    }
    let path =
        std::env::temp_dir().join(format!("triad-backend-properties-{}.json", std::process::id()));
    let path = path.to_str().unwrap().to_string();
    t.save(&path).unwrap();
    path
}

/// Every backend the workspace ships, built through its config.
fn all_backends(table_path: &str) -> Vec<Box<dyn EnergyBackend>> {
    let mut configs = vec![
        EnergyBackendConfig::Parametric,
        EnergyBackendConfig::Table { path: table_path.to_string() },
    ];
    for node in ["32nm", "22nm", "14nm", "7nm"] {
        configs.push(EnergyBackendConfig::Scaled { node: node.into() });
    }
    configs.iter().map(|c| c.build().unwrap()).collect()
}

fn utils() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 10.0).collect()
}

#[test]
fn power_is_finite_and_nonnegative_on_the_whole_grid() {
    let path = wobbly_table_json_path();
    let grid = DvfsGrid::table1();
    for em in all_backends(&path) {
        for c in CoreSize::ALL {
            for (_, vf) in grid.iter() {
                for &u in &utils() {
                    for (what, v) in [
                        ("dynamic", em.core_dynamic_power(c, vf, u)),
                        ("static", em.core_static_power(c, vf)),
                        ("total", em.core_power(c, vf, u)),
                        ("energy", em.core_energy(c, vf, u, 1.5)),
                    ] {
                        assert!(
                            v.is_finite() && v >= 0.0,
                            "{}: {what} power must be finite and nonnegative at \
                             ({c:?}, {:.2} GHz, util {u}): {v}",
                            em.label(),
                            vf.freq_ghz()
                        );
                    }
                }
            }
        }
        assert!(em.dram_energy(1_000_000) >= 0.0, "{}", em.label());
        assert!(em.uncore_energy(8, 3.0) >= 0.0, "{}", em.label());
        assert!(em.dram_energy(0) == 0.0 && em.uncore_energy(8, 0.0) == 0.0);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn energy_is_monotone_in_frequency_at_fixed_utilization() {
    // Raising the operating point (f and its paired V) at fixed utilization
    // must never reduce power — so energy over any fixed window is monotone
    // in frequency for every backend.
    let path = wobbly_table_json_path();
    let grid = DvfsGrid::table1();
    for em in all_backends(&path) {
        for c in CoreSize::ALL {
            for &u in &utils() {
                let powers: Vec<f64> = grid.iter().map(|(_, vf)| em.core_power(c, vf, u)).collect();
                for w in powers.windows(2) {
                    assert!(
                        w[1] >= w[0] - 1e-15,
                        "{}: power must be nondecreasing in the VF point at \
                         ({c:?}, util {u}): {powers:?}",
                        em.label()
                    );
                }
                let window_energy: Vec<f64> =
                    grid.iter().map(|(_, vf)| em.core_energy(c, vf, u, 2.0)).collect();
                for w in window_energy.windows(2) {
                    assert!(w[1] >= w[0] - 1e-15, "{}", em.label());
                }
            }
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn dynamic_power_is_monotone_in_utilization() {
    let path = wobbly_table_json_path();
    let grid = DvfsGrid::table1();
    for em in all_backends(&path) {
        for c in CoreSize::ALL {
            for (_, vf) in grid.iter() {
                let by_util: Vec<f64> =
                    utils().iter().map(|&u| em.core_dynamic_power(c, vf, u)).collect();
                for w in by_util.windows(2) {
                    assert!(
                        w[1] >= w[0] - 1e-15,
                        "{}: busier cores must not burn less: {by_util:?}",
                        em.label()
                    );
                }
                // Clamping: out-of-range utilization equals the boundary.
                assert_eq!(
                    em.core_dynamic_power(c, vf, 1.7),
                    em.core_dynamic_power(c, vf, 1.0),
                    "{}",
                    em.label()
                );
                assert_eq!(em.core_dynamic_power(c, vf, -0.3), em.core_dynamic_power(c, vf, 0.0));
            }
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn dyn_ratio_is_a_consistent_group() {
    let path = wobbly_table_json_path();
    for em in all_backends(&path) {
        for a in CoreSize::ALL {
            assert!((em.dyn_ratio(a, a) - 1.0).abs() < 1e-12, "{}", em.label());
            for b in CoreSize::ALL {
                let ab = em.dyn_ratio(a, b);
                assert!(ab.is_finite() && ab > 0.0, "{}", em.label());
                assert!((ab * em.dyn_ratio(b, a) - 1.0).abs() < 1e-12, "{}", em.label());
                for c in CoreSize::ALL {
                    let via = em.dyn_ratio(a, c) * em.dyn_ratio(c, b);
                    assert!((ab - via).abs() < 1e-9, "{}: ratios must compose", em.label());
                }
            }
        }
        // Bigger cores switch more capacitance in every in-tree backend.
        assert!(em.dyn_ratio(CoreSize::L, CoreSize::S) > 1.0, "{}", em.label());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn labels_are_unique_and_stable() {
    let path = wobbly_table_json_path();
    let backends = all_backends(&path);
    let mut labels: Vec<String> = backends.iter().map(|b| b.label()).collect();
    assert!(labels.contains(&"mcpat".to_string()));
    assert!(labels.iter().any(|l| l.starts_with("table:")));
    assert!(labels.contains(&"scaled:7nm".to_string()));
    labels.sort();
    labels.dedup();
    assert_eq!(labels.len(), backends.len(), "backend labels must be unique");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn grid_off_points_stay_well_behaved() {
    // The RM only queries grid points, but backends must not blow up just
    // outside them (the table backend clamps; the analytic ones
    // extrapolate).
    let path = wobbly_table_json_path();
    for em in all_backends(&path) {
        for c in CoreSize::ALL {
            for f_ghz in [0.75, 1.015, 2.125, 3.5] {
                let vf = VfPoint { freq_hz: f_ghz * 1e9, volt: DvfsGrid::voltage_for(f_ghz * 1e9) };
                let p = em.core_power(c, vf, 0.5);
                assert!(p.is_finite() && p >= 0.0, "{}: {f_ghz} GHz: {p}", em.label());
            }
        }
    }
    let _ = std::fs::remove_file(&path);
}
