//! Global optimization: recursive pairwise reduction of energy curves.
//!
//! The interface between local and global optimization is an energy curve
//! per core (§III-A). Two curves combine into one over their summed
//! allocation: `E_ab(s) = min_{wa + wb = s} E_a(wa) + E_b(wb)`; reducing
//! pairs recursively yields a single curve whose value at the total LLC
//! associativity `A` is the optimal system energy, and back-tracking the
//! recorded argmins recovers the per-core allocation `{w*_j}`. The
//! procedure is polynomial in the core count — the property the paper
//! highlights — and independent of *how* each local point was produced
//! (RM1/RM2/RM3 all feed it).

/// One core's energy-vs-allocation curve (`INFINITY` = infeasible).
#[derive(Debug, Clone)]
pub struct EnergyCurve {
    /// Smallest allocation in the domain.
    pub min_w: usize,
    /// Energy per instruction for `w = min_w ..`.
    pub energy: Vec<f64>,
}

impl EnergyCurve {
    /// Largest allocation in the domain.
    pub fn max_w(&self) -> usize {
        self.min_w + self.energy.len() - 1
    }

    /// Energy at allocation `w`.
    pub fn at(&self, w: usize) -> f64 {
        self.energy[w - self.min_w]
    }
}

/// A reduction-tree node: either one core or a combined curve with the
/// argmin table needed for back-tracking.
enum Node {
    Leaf { core: usize, curve: EnergyCurve },
    Pair { left: Box<Node>, right: Box<Node>, curve: EnergyCurve, choice: Vec<usize> },
}

impl Node {
    fn curve(&self) -> &EnergyCurve {
        match self {
            Node::Leaf { curve, .. } => curve,
            Node::Pair { curve, .. } => curve,
        }
    }

    /// Walk down assigning `s` ways to this subtree.
    fn assign(&self, s: usize, out: &mut [usize]) {
        match self {
            Node::Leaf { core, .. } => out[*core] = s,
            Node::Pair { left, right, curve, choice } => {
                let wa = choice[s - curve.min_w];
                left.assign(wa, out);
                right.assign(s - wa, out);
            }
        }
    }
}

/// Combine two curves, recording the left-side argmin per sum.
/// Returns the combined curve, the argmin table and the number of inner
/// iterations (the algorithm-overhead proxy).
pub fn reduce_curves(a: &EnergyCurve, b: &EnergyCurve) -> (EnergyCurve, Vec<usize>, u64) {
    let min_s = a.min_w + b.min_w;
    let len = a.energy.len() + b.energy.len() - 1;
    let mut energy = vec![f64::INFINITY; len];
    let mut choice = vec![a.min_w; len];
    let ops = reduce_curves_into(a.min_w, &a.energy, b.min_w, &b.energy, &mut energy, &mut choice);
    (EnergyCurve { min_w: min_s, energy }, choice, ops)
}

/// The allocation-free core of [`reduce_curves`]: combine two raw curves
/// (each a `min_w` plus a dense energy slice) into caller-owned output
/// buffers, resetting them first. `energy` and `choice` must both have
/// length `a.len() + b.len() - 1` (the combined domain). Returns the
/// inner-iteration count — the §III-E overhead proxy, a pure function of
/// the two domain shapes.
///
/// This is what [`crate::planner::PlannerState`] calls per pair-node so a
/// re-plan never allocates; the results are bit-identical to
/// [`reduce_curves`] because the loop is the same.
pub fn reduce_curves_into(
    a_min: usize,
    a: &[f64],
    b_min: usize,
    b: &[f64],
    energy: &mut [f64],
    choice: &mut [usize],
) -> u64 {
    let a_max = a_min + a.len() - 1;
    let b_max = b_min + b.len() - 1;
    let min_s = a_min + b_min;
    let max_s = a_max + b_max;
    debug_assert_eq!(energy.len(), max_s - min_s + 1, "output buffers must span the joint domain");
    debug_assert_eq!(choice.len(), energy.len());
    energy.fill(f64::INFINITY);
    choice.fill(a_min);
    let mut ops = 0u64;
    for s in min_s..=max_s {
        let wa_lo = a_min.max(s.saturating_sub(b_max));
        let wa_hi = a_max.min(s - b_min);
        for wa in wa_lo..=wa_hi {
            ops += 1;
            let e = a[wa - a_min] + b[s - wa - b_min];
            if e < energy[s - min_s] {
                energy[s - min_s] = e;
                choice[s - min_s] = wa;
            }
        }
    }
    ops
}

/// Evaluate one entry of the combined curve: `E_ab(s)` and its left-side
/// argmin, without sweeping the joint domain. Returns `None` when `s` is
/// outside it. The scan order and strict-`<` comparison are identical to
/// [`reduce_curves_into`]'s inner loop, so the returned energy and argmin
/// are bit-identical to the corresponding entries of the full sweep —
/// this is how [`crate::planner::PlannerState`] evaluates the root node,
/// whose curve is only ever read at the total-ways budget.
pub fn reduce_curves_at(
    a_min: usize,
    a: &[f64],
    b_min: usize,
    b: &[f64],
    s: usize,
) -> Option<(f64, usize)> {
    let a_max = a_min + a.len() - 1;
    let b_max = b_min + b.len() - 1;
    if s < a_min + b_min || s > a_max + b_max {
        return None;
    }
    let wa_lo = a_min.max(s.saturating_sub(b_max));
    let wa_hi = a_max.min(s - b_min);
    let mut energy = f64::INFINITY;
    let mut choice = a_min;
    for wa in wa_lo..=wa_hi {
        let e = a[wa - a_min] + b[s - wa - b_min];
        if e < energy {
            energy = e;
            choice = wa;
        }
    }
    Some((energy, choice))
}

fn build_tree(curves: &[EnergyCurve], lo: usize, hi: usize, ops: &mut u64) -> Node {
    if hi - lo == 1 {
        return Node::Leaf { core: lo, curve: curves[lo].clone() };
    }
    let mid = lo + (hi - lo) / 2;
    let left = build_tree(curves, lo, mid, ops);
    let right = build_tree(curves, mid, hi, ops);
    let (curve, choice, o) = reduce_curves(left.curve(), right.curve());
    *ops += o;
    Node::Pair { left: Box::new(left), right: Box::new(right), curve, choice }
}

/// Find `{w*_j}` minimizing `Σ_j E_j(w_j)` subject to `Σ_j w_j = total`.
///
/// Returns the allocation, the optimal energy and the iteration count, or
/// `None` when no feasible assignment exists (every per-core curve must
/// have at least one finite point summing to `total`).
pub fn optimize_partition(curves: &[EnergyCurve], total: usize) -> Option<(Vec<usize>, f64, u64)> {
    assert!(!curves.is_empty());
    let mut ops = 0u64;
    let root = build_tree(curves, 0, curves.len(), &mut ops);
    let rc = root.curve();
    if total < rc.min_w || total > rc.max_w() {
        return None;
    }
    let e = rc.at(total);
    if !e.is_finite() {
        return None;
    }
    let mut out = vec![0usize; curves.len()];
    root.assign(total, &mut out);
    Some((out, e, ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_util::rand::rngs::StdRng;
    use triad_util::rand::{RngExt, SeedableRng};

    fn curve(min_w: usize, energy: Vec<f64>) -> EnergyCurve {
        EnergyCurve { min_w, energy }
    }

    /// Exhaustive reference optimizer for small systems.
    fn brute_force(curves: &[EnergyCurve], total: usize) -> Option<(Vec<usize>, f64)> {
        fn rec(
            curves: &[EnergyCurve],
            i: usize,
            left: usize,
            acc: f64,
            cur: &mut Vec<usize>,
            best: &mut Option<(Vec<usize>, f64)>,
        ) {
            if i == curves.len() {
                if left == 0
                    && acc.is_finite()
                    && best.as_ref().map(|(_, e)| acc < *e).unwrap_or(true)
                {
                    *best = Some((cur.clone(), acc));
                }
                return;
            }
            let c = &curves[i];
            for w in c.min_w..=c.max_w().min(left) {
                cur.push(w);
                rec(curves, i + 1, left - w, acc + c.at(w), cur, best);
                cur.pop();
            }
        }
        let mut best = None;
        rec(curves, 0, total, 0.0, &mut Vec::new(), &mut best);
        best
    }

    #[test]
    fn two_core_hand_case() {
        // Core 0 wants ways badly; core 1 is flat.
        let a = curve(2, (0..15).map(|i| 10.0 - i as f64 * 0.6).collect());
        let b = curve(2, vec![5.0; 15]);
        let (ws, e, _) = optimize_partition(&[a, b], 16).unwrap();
        assert_eq!(ws, vec![14, 2]);
        assert!((e - (10.0 - 12.0 * 0.6) + -5.0 + 10.0 - 10.0).abs() < 1.0); // sanity
        let total: usize = ws.iter().sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn respects_equality_constraint() {
        let curves: Vec<EnergyCurve> =
            (0..4).map(|i| curve(2, (0..15).map(|w| (w + i) as f64).collect())).collect();
        let (ws, _, _) = optimize_partition(&curves, 32).unwrap();
        assert_eq!(ws.iter().sum::<usize>(), 32);
        for &w in &ws {
            assert!((2..=16).contains(&w));
        }
    }

    #[test]
    fn matches_brute_force_on_random_curves() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..50 {
            let n = 2 + (trial % 3); // 2..4 cores
            let curves: Vec<EnergyCurve> = (0..n)
                .map(|_| {
                    let e: Vec<f64> = (0..15)
                        .map(|_| {
                            if rng.random_bool(0.1) {
                                f64::INFINITY
                            } else {
                                rng.random::<f64>() * 10.0
                            }
                        })
                        .collect();
                    curve(2, e)
                })
                .collect();
            let total = 8 * n;
            let fast = optimize_partition(&curves, total);
            let slow = brute_force(&curves, total);
            match (fast, slow) {
                (Some((ws, e, _)), Some((_, eb))) => {
                    assert!((e - eb).abs() < 1e-9, "trial {trial}: {e} vs {eb}");
                    let check: f64 = ws.iter().enumerate().map(|(i, &w)| curves[i].at(w)).sum();
                    assert!((check - e).abs() < 1e-9, "assignment must realize the optimum");
                    assert_eq!(ws.iter().sum::<usize>(), total);
                }
                (None, None) => {}
                (f, s) => panic!("trial {trial}: fast {f:?} vs slow {s:?}"),
            }
        }
    }

    #[test]
    fn infeasible_when_curves_are_infinite() {
        let a = curve(2, vec![f64::INFINITY; 15]);
        let b = curve(2, vec![1.0; 15]);
        assert!(optimize_partition(&[a, b], 16).is_none());
    }

    #[test]
    fn total_out_of_domain_is_rejected() {
        let a = curve(2, vec![1.0; 15]);
        let b = curve(2, vec![1.0; 15]);
        assert!(optimize_partition(&[a.clone(), b.clone()], 3).is_none());
        assert!(optimize_partition(&[a, b], 33).is_none());
    }

    #[test]
    fn eight_core_scales_and_balances() {
        // Identical convex curves: the even split must be optimal.
        let mk = || curve(2, (0..15).map(|i| ((i as f64) - 6.0).powi(2)).collect());
        let curves: Vec<EnergyCurve> = (0..8).map(|_| mk()).collect();
        let (ws, e, ops) = optimize_partition(&curves, 64).unwrap();
        assert_eq!(ws, vec![8; 8]);
        assert!(e.abs() < 1e-9, "even split has zero cost here: {e}");
        // Polynomial work: far below the 15^8 exhaustive space.
        assert!(ops < 20_000, "{ops}");
    }

    #[test]
    fn single_entry_reduction_matches_full_sweep() {
        let mut rng = StdRng::seed_from_u64(99);
        let point = |rng: &mut StdRng| {
            if rng.random_bool(0.2) {
                f64::INFINITY
            } else {
                rng.random::<f64>() * 5.0
            }
        };
        for _ in 0..50 {
            let a = curve(2, (0..7).map(|_| point(&mut rng)).collect());
            let b = curve(1, (0..9).map(|_| point(&mut rng)).collect());
            let (full, choice, _) = reduce_curves(&a, &b);
            for s in full.min_w..=full.max_w() {
                let (e, wa) = reduce_curves_at(a.min_w, &a.energy, b.min_w, &b.energy, s).unwrap();
                assert_eq!(e.to_bits(), full.at(s).to_bits());
                assert_eq!(wa, choice[s - full.min_w]);
            }
            for s in [full.min_w - 1, full.max_w() + 1] {
                assert!(reduce_curves_at(a.min_w, &a.energy, b.min_w, &b.energy, s).is_none());
            }
        }
    }

    #[test]
    fn reduction_is_order_insensitive_in_value() {
        let mut rng = StdRng::seed_from_u64(7);
        let curves: Vec<EnergyCurve> =
            (0..5).map(|_| curve(2, (0..15).map(|_| rng.random::<f64>()).collect())).collect();
        let (_, e1, _) = optimize_partition(&curves, 40).unwrap();
        let mut rev = curves.clone();
        rev.reverse();
        let (_, e2, _) = optimize_partition(&rev, 40).unwrap();
        assert!((e1 - e2).abs() < 1e-12);
    }
}
