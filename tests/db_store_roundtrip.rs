//! The store's end-to-end contract: a campaign replayed from a persisted,
//! reloaded database produces **byte-identical** JSON rows to one replayed
//! from the freshly built database — and a corrupted cache file silently
//! falls back to a rebuild that repairs the cache.

use triad::phasedb::{build_apps, DbConfig, DbStore, StoreOutcome};
use triad::sim::{Campaign, ExperimentSpec};
use triad::trace::AppSpec;

fn apps() -> Vec<AppSpec> {
    let names = ["mcf", "povray"];
    triad::trace::suite().into_iter().filter(|a| names.contains(&a.name)).collect()
}

/// SHA-256 of the persisted fast-config {mcf, libquantum, povray} artifact,
/// captured from the pre-engine (PR 4) `build_phase`. The lockstep batched
/// engine must keep every phase-database artifact **byte-identical** — a
/// drift here means the timing model's results changed, not just its speed.
/// (Legitimate model/trace changes must update this constant deliberately.)
const ARTIFACT_SHA256: &str = "4c3b392fbaad78a948b3790d305da9148092b12630f4ac968d6961a20ecf412c";

#[test]
fn store_artifact_digest_is_unchanged() {
    let names = ["mcf", "libquantum", "povray"];
    let apps: Vec<AppSpec> =
        triad::trace::suite().into_iter().filter(|a| names.contains(&a.name)).collect();
    let dir = std::env::temp_dir().join(format!("triad-db-store-digest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let resolved = DbStore::new(&dir).resolve(&apps, &DbConfig::fast());
    let bytes = std::fs::read(&resolved.path).unwrap();
    let mut h = triad_util::hash::Sha256::new();
    h.update(&bytes);
    let digest = triad_util::hash::hex(&h.finalize());
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(digest, ARTIFACT_SHA256, "phase-db artifact bytes drifted");
}

fn campaign() -> Campaign {
    Campaign::new(vec![
        ExperimentSpec::new("idle", &["mcf", "povray"]).rm(None).target_intervals(6),
        ExperimentSpec::new("rm3", &["mcf", "povray"]).target_intervals(6),
        ExperimentSpec::new("rm3-perfect", &["mcf", "povray"]).perfect().target_intervals(6),
    ])
}

fn report(db: &triad::phasedb::PhaseDb) -> String {
    Campaign::report(&campaign().run(db)).to_string_pretty()
}

#[test]
fn persist_reload_replays_bit_exactly_and_corruption_falls_back() {
    let dir = std::env::temp_dir().join(format!("triad-db-store-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DbStore::new(&dir);
    let cfg = DbConfig::fast();
    let apps = apps();

    // Ground truth: a campaign on the directly built database.
    let built = build_apps(&apps, &cfg);
    let reference = report(&built);

    // Cold resolve builds and persists; the artifact must exist.
    let cold = store.resolve(&apps, &cfg);
    assert_eq!(cold.outcome, StoreOutcome::Miss);
    assert!(cold.path.exists());
    assert_eq!(report(&cold.db), reference, "cold-resolved DB must replay identically");

    // Warm resolve loads from disk — and the loaded database replays the
    // campaign byte-for-byte identically to the fresh build.
    let warm = store.resolve(&apps, &cfg);
    assert_eq!(warm.outcome, StoreOutcome::Hit);
    assert_eq!(report(&warm.db), reference, "loaded DB must replay identically");

    // Corrupt the artifact (truncate mid-document): the store must detect
    // it, rebuild, and repair the cache.
    let text = std::fs::read_to_string(&warm.path).unwrap();
    std::fs::write(&warm.path, &text[..text.len() / 2]).unwrap();
    let repaired = store.resolve(&apps, &cfg);
    assert_eq!(repaired.outcome, StoreOutcome::CorruptRebuilt);
    assert_eq!(report(&repaired.db), reference, "rebuilt DB must replay identically");

    // And the repair is durable: the next resolve hits again.
    let after = store.resolve(&apps, &cfg);
    assert_eq!(after.outcome, StoreOutcome::Hit);
    assert_eq!(report(&after.db), reference);

    // Garbage that parses as JSON but fails schema validation also falls
    // back (a different corruption class than a parse error).
    std::fs::write(&after.path, "{\"schema\":\"triad-phasedb/v1\",\"apps\":[]}").unwrap();
    let repaired2 = store.resolve(&apps, &cfg);
    assert_eq!(repaired2.outcome, StoreOutcome::CorruptRebuilt);
    assert_eq!(report(&repaired2.db), reference);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_cached_resolves_exactly_the_apps_the_campaign_needs() {
    let dir = std::env::temp_dir().join(format!("triad-db-store-runcached-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DbStore::new(&dir);
    let cfg = DbConfig::fast();

    let c = campaign();
    let rows_cold = c.run_cached(&store, &cfg);
    let rows_warm = c.run_cached(&store, &cfg);
    assert_eq!(
        Campaign::report(&rows_cold).to_string_pretty(),
        Campaign::report(&rows_warm).to_string_pretty()
    );
    // Exactly one artifact — the mcf+povray subset — was persisted.
    let files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(files.len(), 1, "one campaign subset, one artifact: {files:?}");
    assert!(files[0].ends_with(".json"));

    let _ = std::fs::remove_dir_all(&dir);
}
