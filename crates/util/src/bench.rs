//! Wall-clock measurement for the `harness = false` benches.
//!
//! Replaces the criterion dependency with the 5 % of it the workspace
//! needs: warm up, run a fixed wall-clock budget, report mean time per
//! iteration (and derived throughput). When `TRIAD_BENCH_JSON` names a
//! file, every measurement is also appended there as one JSON object per
//! line (JSON Lines — append-safe across the several bench binaries CI
//! runs into the same file, then uploads as a workflow artifact).

use crate::json::Json;
use std::hint::black_box;
use std::io::Write;
use std::time::{Duration, Instant};

/// Result of one measured benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Mean seconds per iteration.
    pub secs_per_iter: f64,
    /// Iterations executed in the measurement window.
    pub iters: u64,
}

impl Measurement {
    /// Iterations per second.
    pub fn per_sec(&self) -> f64 {
        1.0 / self.secs_per_iter
    }

    /// Human-readable time per iteration.
    pub fn display_time(&self) -> String {
        let s = self.secs_per_iter;
        if s >= 1.0 {
            format!("{s:.3} s")
        } else if s >= 1e-3 {
            format!("{:.3} ms", s * 1e3)
        } else if s >= 1e-6 {
            format!("{:.3} us", s * 1e6)
        } else {
            format!("{:.1} ns", s * 1e9)
        }
    }
}

/// Measure `f` for roughly `budget` of wall-clock time after a short
/// warm-up, and print `label: <time>/iter` plus optional element
/// throughput.
pub fn bench(
    label: &str,
    elements_per_iter: Option<u64>,
    budget: Duration,
    mut f: impl FnMut(),
) -> Measurement {
    // Warm-up: run a few iterations or 10% of the budget, whichever first.
    let warmup_end = Instant::now() + budget / 10;
    for _ in 0..3 {
        f();
        if Instant::now() >= warmup_end {
            break;
        }
    }

    let start = Instant::now();
    let end = start + budget;
    let mut iters = 0u64;
    while Instant::now() < end || iters == 0 {
        f();
        black_box(());
        iters += 1;
    }
    let secs_per_iter = start.elapsed().as_secs_f64() / iters as f64;
    let m = Measurement { secs_per_iter, iters };
    match elements_per_iter {
        Some(n) => println!(
            "{label:<40} {:>12}/iter  {:>14.0} elem/s",
            m.display_time(),
            n as f64 * m.per_sec()
        ),
        None => println!("{label:<40} {:>12}/iter", m.display_time()),
    }
    append_json_record(label, elements_per_iter, &m);
    m
}

/// Append the measurement to the `TRIAD_BENCH_JSON` file (one JSON object
/// per line), if that variable is set. Failures to write are reported but
/// never fail the bench — the gates, not the record, are the contract.
fn append_json_record(label: &str, elements_per_iter: Option<u64>, m: &Measurement) {
    let Ok(path) = std::env::var("TRIAD_BENCH_JSON") else {
        return;
    };
    let mut rec =
        Json::obj().set("label", label).set("secs_per_iter", m.secs_per_iter).set("iters", m.iters);
    if let Some(n) = elements_per_iter {
        rec = rec.set("elements_per_iter", n);
    }
    let line = rec.to_string_compact();
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{line}"));
    if let Err(e) = res {
        eprintln!("warning: could not append bench record to {path}: {e}");
    }
}

/// Measurement budget from the `TRIAD_BENCH_BUDGET_MS` environment
/// variable (CI smoke runs shrink it), or `default` when unset/invalid.
pub fn budget_from_env(default: Duration) -> Duration {
    match std::env::var("TRIAD_BENCH_BUDGET_MS").ok().and_then(|v| v.parse::<u64>().ok()) {
        Some(ms) => Duration::from_millis(ms.max(1)),
        None => default,
    }
}

/// Hard-assert threshold for the lockstep-vs-scalar speedup gates: the
/// full claim (≥2×) needs a full measurement window; short smoke budgets
/// (<1 s, e.g. CI's 250 ms) get a conservative 1.5× so a noisy shared
/// runner cannot flake the gate while real perf rot still fails it.
pub fn speedup_gate(budget: Duration) -> f64 {
    if budget < Duration::from_secs(1) {
        1.5
    } else {
        2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_sane() {
        let m = bench("noop", None, Duration::from_millis(20), || {
            black_box(1 + 1);
        });
        assert!(m.iters > 0);
        assert!(m.secs_per_iter > 0.0);
        assert!(m.secs_per_iter < 0.1);
    }
}
