//! Thin wrapper: `triad-bench --experiment fig7` (Fig. 7 — QoS-violation probability / expectation / std).
fn main() -> std::process::ExitCode {
    triad_bench::cli::main_with(Some("fig7"))
}
